#include "klinq/registry/model_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <string_view>
#include <system_error>
#include <utility>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/data/dataset_io.hpp"
#include "klinq/fault/fault.hpp"

namespace klinq::registry {

namespace {

// The active pointer is published with the shared_ptr atomic free functions:
// writers (publish/activate/rollback, rare) store under the slot mutex,
// acquire() loads with no lock at all — the RCU pattern the serving layer's
// per-request leases rely on.
snapshot_ptr atomic_active_load(const snapshot_ptr& active) {
  return std::atomic_load_explicit(&active, std::memory_order_acquire);
}

void atomic_active_store(snapshot_ptr& active, snapshot_ptr value) {
  std::atomic_store_explicit(&active, std::move(value),
                             std::memory_order_release);
}

constexpr char kManifestName[] = "registry.manifest";
constexpr std::uint64_t kManifestFormat = 1;

}  // namespace

model_registry::model_registry(std::size_t qubit_count,
                               registry_config config)
    : config_(config) {
  KLINQ_REQUIRE(qubit_count > 0, "model_registry: no qubits");
  KLINQ_REQUIRE(config_.keep_versions > 0,
                "model_registry: keep_versions must be positive");
  slots_.reserve(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    slots_.push_back(std::make_unique<qubit_slot>());
  }
  init_metrics();
}

model_registry::~model_registry() {
  if (config_.metrics != nullptr && collector_id_ != 0) {
    config_.metrics->remove_collector(collector_id_);
  }
}

void model_registry::init_metrics() {
  if (config_.metrics == nullptr) return;
  obs::metric_registry& metrics = *config_.metrics;
  acquires_cell_ =
      &metrics.get_counter("klinq_registry_acquires_total", {},
                           "Engine leases handed to the serving layer.");
  quarantined_cell_ = &metrics.get_counter(
      "klinq_registry_quarantined_total", {},
      "Snapshot files load_directory quarantined (renamed to *.bad) because "
      "they were corrupt, truncated or failed hash verification.");
  cells_.resize(slots_.size());
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    const obs::label_list labels{{"qubit", std::to_string(q)}};
    metric_cells& cells = cells_[q];
    cells.publishes =
        &metrics.get_counter("klinq_registry_publishes_total", labels,
                             "Model versions published.");
    cells.activations = &metrics.get_counter(
        "klinq_registry_activations_total", labels,
        "Active-version changes from any source (publish auto-activation, "
        "explicit activate, rollback, pin, demote).");
    cells.rollbacks = &metrics.get_counter(
        "klinq_registry_rollbacks_total", labels,
        "Rollbacks from any source (explicit rollback() plus demote()).");
    cells.demotions = &metrics.get_counter(
        "klinq_registry_demotions_total", labels,
        "Serve-reported health demotions that switched the active version.");
    cells.active_version = &metrics.get_gauge(
        "klinq_registry_active_version", labels,
        "Currently active model version (0 = nothing published).");
    cells.degraded = &metrics.get_gauge(
        "klinq_registry_degraded", labels,
        "1 while the qubit serves under a health-demotion flag.");
  }
  collector_id_ = metrics.add_collector([this] {
    for (std::size_t q = 0; q < slots_.size(); ++q) {
      cells_[q].active_version->set(static_cast<double>(active_version(q)));
      cells_[q].degraded->set(degraded(q) ? 1.0 : 0.0);
    }
  });
}

model_registry::qubit_slot& model_registry::slot_checked(std::size_t qubit) {
  KLINQ_REQUIRE(qubit < slots_.size(),
                "model_registry: qubit index out of range");
  return *slots_[qubit];
}

const model_registry::qubit_slot& model_registry::slot_checked(
    std::size_t qubit) const {
  KLINQ_REQUIRE(qubit < slots_.size(),
                "model_registry: qubit index out of range");
  return *slots_[qubit];
}

serve::engine_lease model_registry::acquire(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  fault::trigger("registry.acquire");
  snapshot_ptr snapshot = atomic_active_load(slot.active);
  KLINQ_REQUIRE(snapshot != nullptr,
                "model_registry: qubit has no published model");
  acquires_.fetch_add(1, std::memory_order_relaxed);
  bump(acquires_cell_);
  return {snapshot->engines(), snapshot->info().version, std::move(snapshot)};
}

std::uint64_t model_registry::publish(std::size_t qubit,
                                      model_snapshot snapshot) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const std::uint64_t version = slot.next_version++;
  snapshot.info_.version = version;
  auto ptr = std::make_shared<const model_snapshot>(std::move(snapshot));
  slot.versions.emplace_back(version, std::move(ptr));
  published_.fetch_add(1, std::memory_order_relaxed);
  bump(cells_.empty() ? nullptr : cells_[qubit].publishes);
  if (!slot.pinned) activate_locked(slot, qubit, version);
  retire_locked(slot);
  slot.degraded = false;  // fresh model: confidence restored
  return version;
}

void model_registry::activate_locked(qubit_slot& slot, std::size_t qubit,
                                     std::uint64_t version) {
  const auto it = std::find_if(
      slot.versions.begin(), slot.versions.end(),
      [version](const auto& entry) { return entry.first == version; });
  KLINQ_REQUIRE(it != slot.versions.end(),
                "model_registry: version unknown or retired");
  atomic_active_store(slot.active, it->second);
  activations_.fetch_add(1, std::memory_order_relaxed);
  bump(cells_.empty() ? nullptr : cells_[qubit].activations);
}

void model_registry::retire_locked(qubit_slot& slot) {
  const snapshot_ptr active = atomic_active_load(slot.active);
  const std::uint64_t active_version =
      active != nullptr ? active->info().version : 0;
  while (slot.versions.size() > config_.keep_versions) {
    // Oldest non-active first; the active version survives retention even
    // when it is the oldest (rollback targets shrink before service does).
    const auto it = std::find_if(
        slot.versions.begin(), slot.versions.end(),
        [active_version](const auto& entry) {
          return entry.first != active_version;
        });
    if (it == slot.versions.end()) break;
    slot.versions.erase(it);
  }
}

snapshot_ptr model_registry::active(std::size_t qubit) const {
  return atomic_active_load(slot_checked(qubit).active);
}

std::uint64_t model_registry::active_version(std::size_t qubit) const {
  const snapshot_ptr snapshot = active(qubit);
  return snapshot != nullptr ? snapshot->info().version : 0;
}

snapshot_ptr model_registry::at(std::size_t qubit,
                                std::uint64_t version) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const auto it = std::find_if(
      slot.versions.begin(), slot.versions.end(),
      [version](const auto& entry) { return entry.first == version; });
  KLINQ_REQUIRE(it != slot.versions.end(),
                "model_registry: version unknown or retired");
  return it->second;
}

void model_registry::activate(std::size_t qubit, std::uint64_t version) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  activate_locked(slot, qubit, version);
  retire_locked(slot);
  slot.degraded = false;
}

std::uint64_t model_registry::rollback(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const snapshot_ptr current = atomic_active_load(slot.active);
  KLINQ_REQUIRE(current != nullptr,
                "model_registry: qubit has no published model");
  const std::uint64_t active_version = current->info().version;
  std::uint64_t target = 0;
  for (const auto& [version, snapshot] : slot.versions) {
    if (version < active_version && version > target) target = version;
  }
  KLINQ_REQUIRE(target != 0,
                "model_registry: no retained version older than the active "
                "one to roll back to");
  activate_locked(slot, qubit, target);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  bump(cells_.empty() ? nullptr : cells_[qubit].rollbacks);
  slot.degraded = false;
  return target;
}

bool model_registry::demote(std::size_t qubit,
                            std::uint64_t version) const noexcept {
  if (qubit >= slots_.size() || version == 0) return false;
  try {
    // unique_ptr does not propagate constness to the pointee, so the slot is
    // mutable here; the counter members are declared mutable for the same
    // reason. demote() is const only because engine_provider hands the
    // serving layer a const view — the state change itself is sanctioned.
    qubit_slot& slot = *slots_[qubit];
    const std::lock_guard lock(slot.mutex);
    const snapshot_ptr current = atomic_active_load(slot.active);
    if (current == nullptr || current->info().version != version) {
      return false;  // already moved on (another thread or an admin swap)
    }
    std::uint64_t target = 0;
    for (const auto& [retained, snapshot] : slot.versions) {
      if (retained < version && retained > target) target = retained;
    }
    if (target == 0) {
      // Nothing older retained: keep serving the only model we have, but
      // leave the health flag up so operators see the qubit is unwell.
      slot.degraded = true;
      log_warn("model_registry: qubit ", qubit, " v", version,
               " reported failing but no older version is retained");
      return false;
    }
    const auto it = std::find_if(
        slot.versions.begin(), slot.versions.end(),
        [target](const auto& entry) { return entry.first == target; });
    atomic_active_store(slot.active, it->second);
    slot.degraded = true;
    activations_.fetch_add(1, std::memory_order_relaxed);
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    demotions_.fetch_add(1, std::memory_order_relaxed);
    if (!cells_.empty()) {
      bump(cells_[qubit].activations);
      bump(cells_[qubit].rollbacks);
      bump(cells_[qubit].demotions);
    }
    log_warn("model_registry: demoted qubit ", qubit, " v", version, " -> v",
             target, " after serve-reported failures; qubit marked degraded");
    return true;
  } catch (...) {
    return false;  // health feedback must never take down the failure path
  }
}

void model_registry::pin(std::size_t qubit, std::uint64_t version) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  activate_locked(slot, qubit, version);
  slot.pinned = true;
  slot.degraded = false;
}

void model_registry::unpin(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  slot.pinned = false;
}

bool model_registry::pinned(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  return slot.pinned;
}

bool model_registry::degraded(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  return slot.degraded;
}

std::vector<version_record> model_registry::list(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const snapshot_ptr active = atomic_active_load(slot.active);
  const std::uint64_t active_version =
      active != nullptr ? active->info().version : 0;
  std::vector<version_record> records;
  records.reserve(slot.versions.size());
  for (const auto& [version, snapshot] : slot.versions) {
    version_record record;
    record.version = version;
    record.active = version == active_version && active != nullptr;
    record.pinned = record.active && slot.pinned;
    record.info = snapshot->info();
    records.push_back(std::move(record));
  }
  return records;
}

registry_stats model_registry::stats() const {
  registry_stats snapshot;
  snapshot.published = published_.load(std::memory_order_relaxed);
  snapshot.activations = activations_.load(std::memory_order_relaxed);
  snapshot.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  snapshot.acquires = acquires_.load(std::memory_order_relaxed);
  snapshot.demotions = demotions_.load(std::memory_order_relaxed);
  snapshot.quarantined = quarantined_.load(std::memory_order_relaxed);
  return snapshot;
}

namespace {

/// Temporary names our own crash-safe save produces ("<snap>.tmp" /
/// "registry.manifest.tmp") — swept after commit, skipped by the loader.
bool is_registry_temp_file(std::string name) {
  constexpr std::string_view kSuffix = ".tmp";
  if (name.size() <= kSuffix.size() || !name.ends_with(kSuffix)) return false;
  name.resize(name.size() - kSuffix.size());
  std::size_t qubit = 0;
  std::uint64_t version = 0;
  return name == kManifestName ||
         data::parse_versioned_snapshot_filename(name, qubit, version);
}

}  // namespace

void model_registry::save_directory(const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);

  // Crash-safe save: every file is serialized to memory, written to a
  // ".tmp" sibling, fsynced and atomically renamed into place. Snapshots go
  // first; the manifest rename is the commit point. Files the previous save
  // wrote stay untouched until the new manifest is durable, so a crash (or
  // an injected fault) at any instant leaves the directory loadable —
  // either the previous save's state or the new one, never a torn mix.
  // Stray ".tmp" files from an interrupted save are ignored by the loader
  // and swept on the next successful save.
  std::ostringstream manifest_text;
  manifest_text << "klinq-registry " << kManifestFormat << "\n"
                << "qubits " << slots_.size() << "\n"
                << "keep " << config_.keep_versions << "\n";
  std::set<std::string> retained;
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    const qubit_slot& slot = *slots_[q];
    const std::lock_guard lock(slot.mutex);
    const snapshot_ptr active = atomic_active_load(slot.active);
    manifest_text << "qubit " << q << " next " << slot.next_version
                  << " active "
                  << (active != nullptr ? active->info().version : 0)
                  << " pinned " << (slot.pinned ? 1 : 0) << "\n";
    for (const auto& [version, snapshot] : slot.versions) {
      const std::string name = data::versioned_snapshot_filename(q, version);
      const std::string path = directory + "/" + name;
      std::ostringstream serialized;
      snapshot->save(serialized);
      std::string bytes = serialized.str();
      fault::trigger("registry.save.snapshot");
      fault::corrupt("registry.save.snapshot", bytes.data(), bytes.size());
      data::write_file_durable(path + ".tmp", bytes);
      fault::trigger("registry.save.rename");  // "crash" before the rename
      data::replace_file(path + ".tmp", path);
      retained.insert(name);
    }
  }
  std::string manifest_bytes = manifest_text.str();
  fault::trigger("registry.save.manifest");
  fault::corrupt("registry.save.manifest", manifest_bytes.data(),
                 manifest_bytes.size());
  const std::string manifest_path = directory + "/" + kManifestName;
  data::write_file_durable(manifest_path + ".tmp", manifest_bytes);
  fault::trigger("registry.save.rename");  // "crash" before the commit point
  data::replace_file(manifest_path + ".tmp", manifest_path);

  // Committed. Now retire snapshot files the new manifest no longer
  // references (versions retired since the previous save must not
  // resurrect on the next load) plus temporaries left by an interrupted
  // save. Best effort: a leftover only wastes disk, the loader skips it.
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t qubit = 0;
    std::uint64_t version = 0;
    const bool retired_snapshot =
        data::parse_versioned_snapshot_filename(name, qubit, version) &&
        retained.count(name) == 0;
    if (retired_snapshot || is_registry_temp_file(name)) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
}

std::unique_ptr<model_registry> model_registry::load_directory(
    const std::string& directory, registry_config base) {
  namespace fs = std::filesystem;
  std::ifstream manifest(directory + "/" + kManifestName);
  if (!manifest) {
    throw io_error("model_registry: no manifest in " + directory);
  }
  std::string tag;
  std::uint64_t format = 0;
  std::size_t qubit_count = 0;
  registry_config config = base;  // manifest keep_versions overrides below
  manifest >> tag >> format;
  if (!manifest || tag != "klinq-registry" || format != kManifestFormat) {
    throw io_error("model_registry: bad manifest header in " + directory);
  }
  manifest >> tag >> qubit_count;
  if (!manifest || tag != "qubits" || qubit_count == 0) {
    throw io_error("model_registry: bad manifest qubit count in " + directory);
  }
  manifest >> tag >> config.keep_versions;
  if (!manifest || tag != "keep" || config.keep_versions == 0) {
    throw io_error("model_registry: bad manifest retention in " + directory);
  }

  auto registry = std::make_unique<model_registry>(qubit_count, config);

  // Snapshot files first (the manifest's active version must resolve).
  // A snapshot that cannot be read, deserialized or hash-verified — a
  // crash-truncated write, bit rot, an injected corruption — is quarantined
  // (renamed to "*.bad") instead of failing the open: losing one version
  // must not take down every model in the store.
  std::uint64_t quarantined = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t qubit = 0;
    std::uint64_t version = 0;
    if (!data::parse_versioned_snapshot_filename(name, qubit, version)) {
      continue;  // foreign file (or a stray .tmp); not ours to judge
    }
    try {
      if (qubit >= qubit_count) {
        throw io_error("snapshot file for unknown qubit");
      }
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) throw io_error("cannot read snapshot file");
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      fault::trigger("registry.load.snapshot");
      fault::corrupt("registry.load.snapshot", bytes.data(), bytes.size());
      std::istringstream stream(std::move(bytes));
      model_snapshot snapshot = model_snapshot::load(stream);
      if (snapshot.info().version != version) {
        throw io_error("snapshot version does not match its filename");
      }
      qubit_slot& slot = *registry->slots_[qubit];
      const std::lock_guard lock(slot.mutex);
      slot.versions.emplace_back(
          version,
          std::make_shared<const model_snapshot>(std::move(snapshot)));
    } catch (const std::exception& failure) {
      std::error_code ec;
      fs::rename(entry.path(), fs::path(entry.path().string() + ".bad"), ec);
      log_warn("model_registry: quarantined ", entry.path().string(),
               ec ? " (rename failed, file left in place)" : " -> *.bad",
               ": ", failure.what());
      ++quarantined;
    }
  }
  registry->quarantined_.store(quarantined, std::memory_order_relaxed);
  if (registry->quarantined_cell_ != nullptr && quarantined > 0) {
    registry->quarantined_cell_->inc(quarantined);
  }

  // Manifest per-qubit rows: restore counters, active and pin. Rows are
  // parsed line by line and tolerantly — a corrupt or missing row (torn
  // write, truncation) costs that row's metadata, not the whole store: the
  // affected qubits fall back to their newest verifiable snapshot below.
  std::vector<bool> seen(qubit_count, false);
  std::vector<std::uint64_t> row_next(qubit_count, 0);
  std::vector<std::uint64_t> row_active(qubit_count, 0);
  std::vector<bool> row_pinned(qubit_count, false);
  manifest.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::size_t qubit = 0;
    std::uint64_t next = 0;
    std::uint64_t active = 0;
    int pinned = 0;
    std::string next_tag;
    std::string active_tag;
    std::string pinned_tag;
    std::string trailing;
    if (!(row >> tag >> qubit >> next_tag >> next >> active_tag >> active >>
          pinned_tag >> pinned) ||
        row >> trailing || tag != "qubit" || next_tag != "next" ||
        active_tag != "active" || pinned_tag != "pinned" ||
        qubit >= qubit_count || seen[qubit]) {
      log_warn("model_registry: ignoring bad manifest row in ", directory,
               ": '", line, "'");
      continue;
    }
    seen[qubit] = true;
    row_next[qubit] = next;
    row_active[qubit] = active;
    row_pinned[qubit] = pinned != 0;
  }

  for (std::size_t q = 0; q < qubit_count; ++q) {
    qubit_slot& slot = *registry->slots_[q];
    const std::lock_guard lock(slot.mutex);
    std::sort(slot.versions.begin(), slot.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::uint64_t max_version =
        slot.versions.empty() ? 0 : slot.versions.back().first;
    slot.next_version = std::max(row_next[q], max_version + 1);
    slot.pinned = seen[q] && row_pinned[q];
    std::uint64_t desired = seen[q] ? row_active[q] : max_version;
    if (!seen[q] && !slot.versions.empty()) {
      log_warn("model_registry: qubit ", q,
               " has no usable manifest row; activating newest verifiable "
               "version v",
               max_version);
    }
    if (desired == 0) continue;  // deliberately inactive (or nothing loaded)
    auto it = std::find_if(
        slot.versions.begin(), slot.versions.end(),
        [desired](const auto& entry) { return entry.first == desired; });
    if (it == slot.versions.end()) {
      // The recorded active version did not survive verification. Fall back
      // to the newest version that did; a qubit with nothing verifiable is
      // left unpublished (acquire() throws until something is published),
      // but the registry still opens.
      if (slot.versions.empty()) {
        log_warn("model_registry: qubit ", q, " active v", desired,
                 " unverifiable and no fallback version survives; qubit "
                 "left unpublished");
        continue;
      }
      it = std::prev(slot.versions.end());
      log_warn("model_registry: qubit ", q, " active v", desired,
               " unverifiable; falling back to newest verifiable v",
               it->first);
    }
    atomic_active_store(slot.active, it->second);
  }
  return registry;
}

}  // namespace klinq::registry
