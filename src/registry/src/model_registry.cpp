#include "klinq/registry/model_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "klinq/common/error.hpp"
#include "klinq/data/dataset_io.hpp"

namespace klinq::registry {

namespace {

// The active pointer is published with the shared_ptr atomic free functions:
// writers (publish/activate/rollback, rare) store under the slot mutex,
// acquire() loads with no lock at all — the RCU pattern the serving layer's
// per-request leases rely on.
snapshot_ptr atomic_active_load(const snapshot_ptr& active) {
  return std::atomic_load_explicit(&active, std::memory_order_acquire);
}

void atomic_active_store(snapshot_ptr& active, snapshot_ptr value) {
  std::atomic_store_explicit(&active, std::move(value),
                             std::memory_order_release);
}

constexpr char kManifestName[] = "registry.manifest";
constexpr std::uint64_t kManifestFormat = 1;

}  // namespace

model_registry::model_registry(std::size_t qubit_count,
                               registry_config config)
    : config_(config) {
  KLINQ_REQUIRE(qubit_count > 0, "model_registry: no qubits");
  KLINQ_REQUIRE(config_.keep_versions > 0,
                "model_registry: keep_versions must be positive");
  slots_.reserve(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    slots_.push_back(std::make_unique<qubit_slot>());
  }
}

model_registry::qubit_slot& model_registry::slot_checked(std::size_t qubit) {
  KLINQ_REQUIRE(qubit < slots_.size(),
                "model_registry: qubit index out of range");
  return *slots_[qubit];
}

const model_registry::qubit_slot& model_registry::slot_checked(
    std::size_t qubit) const {
  KLINQ_REQUIRE(qubit < slots_.size(),
                "model_registry: qubit index out of range");
  return *slots_[qubit];
}

serve::engine_lease model_registry::acquire(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  snapshot_ptr snapshot = atomic_active_load(slot.active);
  KLINQ_REQUIRE(snapshot != nullptr,
                "model_registry: qubit has no published model");
  acquires_.fetch_add(1, std::memory_order_relaxed);
  return {snapshot->engines(), snapshot->info().version, std::move(snapshot)};
}

std::uint64_t model_registry::publish(std::size_t qubit,
                                      model_snapshot snapshot) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const std::uint64_t version = slot.next_version++;
  snapshot.info_.version = version;
  auto ptr = std::make_shared<const model_snapshot>(std::move(snapshot));
  slot.versions.emplace_back(version, std::move(ptr));
  published_.fetch_add(1, std::memory_order_relaxed);
  if (!slot.pinned) activate_locked(slot, version);
  retire_locked(slot);
  return version;
}

void model_registry::activate_locked(qubit_slot& slot, std::uint64_t version) {
  const auto it = std::find_if(
      slot.versions.begin(), slot.versions.end(),
      [version](const auto& entry) { return entry.first == version; });
  KLINQ_REQUIRE(it != slot.versions.end(),
                "model_registry: version unknown or retired");
  atomic_active_store(slot.active, it->second);
  activations_.fetch_add(1, std::memory_order_relaxed);
}

void model_registry::retire_locked(qubit_slot& slot) {
  const snapshot_ptr active = atomic_active_load(slot.active);
  const std::uint64_t active_version =
      active != nullptr ? active->info().version : 0;
  while (slot.versions.size() > config_.keep_versions) {
    // Oldest non-active first; the active version survives retention even
    // when it is the oldest (rollback targets shrink before service does).
    const auto it = std::find_if(
        slot.versions.begin(), slot.versions.end(),
        [active_version](const auto& entry) {
          return entry.first != active_version;
        });
    if (it == slot.versions.end()) break;
    slot.versions.erase(it);
  }
}

snapshot_ptr model_registry::active(std::size_t qubit) const {
  return atomic_active_load(slot_checked(qubit).active);
}

std::uint64_t model_registry::active_version(std::size_t qubit) const {
  const snapshot_ptr snapshot = active(qubit);
  return snapshot != nullptr ? snapshot->info().version : 0;
}

snapshot_ptr model_registry::at(std::size_t qubit,
                                std::uint64_t version) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const auto it = std::find_if(
      slot.versions.begin(), slot.versions.end(),
      [version](const auto& entry) { return entry.first == version; });
  KLINQ_REQUIRE(it != slot.versions.end(),
                "model_registry: version unknown or retired");
  return it->second;
}

void model_registry::activate(std::size_t qubit, std::uint64_t version) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  activate_locked(slot, version);
  retire_locked(slot);
}

std::uint64_t model_registry::rollback(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const snapshot_ptr current = atomic_active_load(slot.active);
  KLINQ_REQUIRE(current != nullptr,
                "model_registry: qubit has no published model");
  const std::uint64_t active_version = current->info().version;
  std::uint64_t target = 0;
  for (const auto& [version, snapshot] : slot.versions) {
    if (version < active_version && version > target) target = version;
  }
  KLINQ_REQUIRE(target != 0,
                "model_registry: no retained version older than the active "
                "one to roll back to");
  activate_locked(slot, target);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return target;
}

void model_registry::pin(std::size_t qubit, std::uint64_t version) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  activate_locked(slot, version);
  slot.pinned = true;
}

void model_registry::unpin(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  slot.pinned = false;
}

bool model_registry::pinned(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  return slot.pinned;
}

std::vector<version_record> model_registry::list(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const snapshot_ptr active = atomic_active_load(slot.active);
  const std::uint64_t active_version =
      active != nullptr ? active->info().version : 0;
  std::vector<version_record> records;
  records.reserve(slot.versions.size());
  for (const auto& [version, snapshot] : slot.versions) {
    version_record record;
    record.version = version;
    record.active = version == active_version && active != nullptr;
    record.pinned = record.active && slot.pinned;
    record.info = snapshot->info();
    records.push_back(std::move(record));
  }
  return records;
}

registry_stats model_registry::stats() const {
  registry_stats snapshot;
  snapshot.published = published_.load(std::memory_order_relaxed);
  snapshot.activations = activations_.load(std::memory_order_relaxed);
  snapshot.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  snapshot.acquires = acquires_.load(std::memory_order_relaxed);
  return snapshot;
}

void model_registry::save_directory(const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  // Drop every snapshot file a previous save left behind: versions retired
  // since then must not resurrect on the next load (retention would be
  // silently violated). The retained set is rewritten below; foreign files
  // never match the filename pattern and are left alone.
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    std::size_t qubit = 0;
    std::uint64_t version = 0;
    if (entry.is_regular_file() &&
        data::parse_versioned_snapshot_filename(
            entry.path().filename().string(), qubit, version)) {
      fs::remove(entry.path());
    }
  }
  std::ofstream manifest(directory + "/" + kManifestName);
  if (!manifest) {
    throw io_error("model_registry: cannot write manifest in " + directory);
  }
  manifest << "klinq-registry " << kManifestFormat << "\n"
           << "qubits " << slots_.size() << "\n"
           << "keep " << config_.keep_versions << "\n";
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    const qubit_slot& slot = *slots_[q];
    const std::lock_guard lock(slot.mutex);
    const snapshot_ptr active = atomic_active_load(slot.active);
    manifest << "qubit " << q << " next " << slot.next_version << " active "
             << (active != nullptr ? active->info().version : 0) << " pinned "
             << (slot.pinned ? 1 : 0) << "\n";
    for (const auto& [version, snapshot] : slot.versions) {
      const std::string path =
          directory + "/" + data::versioned_snapshot_filename(q, version);
      std::ofstream out(path, std::ios::binary);
      if (!out) throw io_error("model_registry: cannot write " + path);
      snapshot->save(out);
    }
  }
  if (!manifest) {
    throw io_error("model_registry: manifest write failed in " + directory);
  }
}

std::unique_ptr<model_registry> model_registry::load_directory(
    const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream manifest(directory + "/" + kManifestName);
  if (!manifest) {
    throw io_error("model_registry: no manifest in " + directory);
  }
  std::string tag;
  std::uint64_t format = 0;
  std::size_t qubit_count = 0;
  registry_config config;
  manifest >> tag >> format;
  if (!manifest || tag != "klinq-registry" || format != kManifestFormat) {
    throw io_error("model_registry: bad manifest header in " + directory);
  }
  manifest >> tag >> qubit_count;
  if (!manifest || tag != "qubits" || qubit_count == 0) {
    throw io_error("model_registry: bad manifest qubit count in " + directory);
  }
  manifest >> tag >> config.keep_versions;
  if (!manifest || tag != "keep" || config.keep_versions == 0) {
    throw io_error("model_registry: bad manifest retention in " + directory);
  }

  auto registry = std::make_unique<model_registry>(qubit_count, config);

  // Snapshot files first (the manifest's active version must resolve).
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    std::size_t qubit = 0;
    std::uint64_t version = 0;
    if (!data::parse_versioned_snapshot_filename(
            entry.path().filename().string(), qubit, version)) {
      continue;  // foreign file; not ours to judge
    }
    if (qubit >= qubit_count) {
      throw io_error("model_registry: snapshot file for unknown qubit: " +
                     entry.path().string());
    }
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      throw io_error("model_registry: cannot read " + entry.path().string());
    }
    model_snapshot snapshot = model_snapshot::load(in);
    if (snapshot.info().version != version) {
      throw io_error(
          "model_registry: snapshot version does not match its filename: " +
          entry.path().string());
    }
    qubit_slot& slot = *registry->slots_[qubit];
    const std::lock_guard lock(slot.mutex);
    slot.versions.emplace_back(
        version, std::make_shared<const model_snapshot>(std::move(snapshot)));
  }

  // Manifest per-qubit state: restore ordering, counters, active and pin.
  // Exactly one row per qubit is required — a truncated manifest (crash or
  // disk-full during a previous save) must be rejected, not loaded as a
  // registry whose tail qubits silently lost their state.
  std::vector<bool> seen(qubit_count, false);
  for (std::size_t row = 0; row < qubit_count; ++row) {
    std::size_t qubit = 0;
    std::uint64_t next = 0;
    std::uint64_t active = 0;
    int pinned = 0;
    std::string next_tag;
    std::string active_tag;
    std::string pinned_tag;
    if (!(manifest >> tag >> qubit >> next_tag >> next >> active_tag >>
          active >> pinned_tag >> pinned) ||
        tag != "qubit" || next_tag != "next" || active_tag != "active" ||
        pinned_tag != "pinned" || qubit >= qubit_count || seen[qubit]) {
      throw io_error("model_registry: bad or truncated manifest row in " +
                     directory);
    }
    seen[qubit] = true;
    qubit_slot& slot = *registry->slots_[qubit];
    const std::lock_guard lock(slot.mutex);
    std::sort(slot.versions.begin(), slot.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint64_t max_version = 0;
    for (const auto& [version, snapshot] : slot.versions) {
      max_version = std::max(max_version, version);
    }
    slot.next_version = std::max(next, max_version + 1);
    slot.pinned = pinned != 0;
    if (active != 0) {
      const auto it = std::find_if(
          slot.versions.begin(), slot.versions.end(),
          [active](const auto& entry) { return entry.first == active; });
      if (it == slot.versions.end()) {
        throw io_error(
            "model_registry: manifest's active version has no snapshot "
            "file in " +
            directory);
      }
      atomic_active_store(slot.active, it->second);
    }
  }
  return registry;
}

}  // namespace klinq::registry
