#include "klinq/registry/snapshot.hpp"

#include <array>
#include <chrono>
#include <istream>
#include <ostream>
#include <utility>

#include "klinq/common/error.hpp"
#include "klinq/nn/serialize.hpp"

namespace klinq::registry {

namespace {

constexpr std::array<char, 8> kMagic = {'K', 'L', 'N', 'Q',
                                        'S', 'N', 'P', '1'};
constexpr std::uint64_t kFormatVersion = 1;

}  // namespace

double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

model_snapshot::model_snapshot(kd::student_model student,
                               calibration_info info)
    : student_(std::move(student)),
      hardware_(student_),
      info_(std::move(info)) {}

void model_snapshot::save(std::ostream& out) const {
  namespace io = nn::io;
  out.write(kMagic.data(), kMagic.size());
  io::write_u64(out, kFormatVersion);
  io::write_u64(out, info_.version);
  io::write_string(out, info_.source);
  io::write_f64(out, info_.created_unix_seconds);
  io::write_u64(out, info_.calibration_shots);
  io::write_f64(out, info_.train_accuracy);
  io::write_u64(out, quantized_hash());
  student_.save(out);
  if (!out) throw io_error("snapshot serialize: stream write failed");
}

model_snapshot model_snapshot::load(std::istream& in) {
  namespace io = nn::io;
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw io_error("snapshot deserialize: bad magic header");
  }
  const std::uint64_t format = io::read_u64(in, "snapshot deserialize");
  if (format != kFormatVersion) {
    throw io_error("snapshot deserialize: unsupported format version");
  }
  calibration_info info;
  info.version = io::read_u64(in, "snapshot deserialize");
  info.source = io::read_string(in, "snapshot deserialize");
  info.created_unix_seconds = io::read_f64(in, "snapshot deserialize");
  info.calibration_shots = io::read_u64(in, "snapshot deserialize");
  info.train_accuracy = io::read_f64(in, "snapshot deserialize");
  const std::uint64_t recorded_hash = io::read_u64(in, "snapshot deserialize");
  model_snapshot snapshot(kd::student_model::load(in), std::move(info));
  if (snapshot.quantized_hash() != recorded_hash) {
    throw io_error(
        "snapshot deserialize: quantized parameter hash mismatch (the "
        "requantized student does not reproduce the recorded registers)");
  }
  return snapshot;
}

}  // namespace klinq::registry
