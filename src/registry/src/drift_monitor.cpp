#include "klinq/registry/drift_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "klinq/common/error.hpp"

namespace klinq::registry {

void drift_monitor::accumulator::clear() {
  shots = 0;
  ones = 0;
  low_margin = 0;
  sum_abs_margin = 0.0;
  histogram.reset();
}

double drift_monitor::accumulator::mean_abs_margin() const {
  return shots > 0 ? sum_abs_margin / static_cast<double>(shots) : 0.0;
}

double drift_monitor::accumulator::class_balance() const {
  return shots > 0 ? static_cast<double>(ones) / static_cast<double>(shots)
                   : 0.0;
}

drift_monitor::drift_monitor(std::size_t qubit_count,
                             drift_thresholds thresholds)
    : thresholds_(thresholds) {
  KLINQ_REQUIRE(qubit_count > 0, "drift_monitor: no qubits");
  slots_.reserve(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    slots_.push_back(std::make_unique<qubit_slot>());
  }
}

drift_monitor::qubit_slot& drift_monitor::slot_checked(
    std::size_t qubit) const {
  KLINQ_REQUIRE(qubit < slots_.size(),
                "drift_monitor: qubit index out of range");
  return *slots_[qubit];
}

template <class MarginAt>
void drift_monitor::fold(accumulator& into,
                         std::span<const std::uint8_t> states,
                         MarginAt margin_at, double low_margin_floor) {
  for (std::size_t r = 0; r < states.size(); ++r) {
    const double margin = std::abs(margin_at(r));
    ++into.shots;
    into.ones += states[r] != 0 ? 1 : 0;
    into.sum_abs_margin += margin;
    if (low_margin_floor > 0.0 && margin < low_margin_floor) {
      ++into.low_margin;
    }
    into.histogram.record(margin);
  }
}

void drift_monitor::observe(std::size_t qubit,
                            std::span<const std::uint8_t> states,
                            std::span<const float> margins) {
  KLINQ_REQUIRE(states.size() == margins.size(),
                "drift_monitor: one margin per state required");
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  const double floor =
      slot.baseline.shots > 0
          ? thresholds_.low_margin_ratio * slot.baseline.mean_abs_margin()
          : 0.0;
  fold(slot.window, states,
       [margins](std::size_t r) { return static_cast<double>(margins[r]); },
       floor);
}

void drift_monitor::observe(const serve::shard_event& event) {
  if (event.engine == serve::engine_kind::fixed_q16) {
    qubit_slot& slot = slot_checked(event.qubit);
    const std::lock_guard lock(slot.mutex);
    const double floor =
        slot.baseline.shots > 0
            ? thresholds_.low_margin_ratio * slot.baseline.mean_abs_margin()
            : 0.0;
    const auto registers = event.registers;
    fold(slot.window, event.states,
         [registers](std::size_t r) { return registers[r].to_double(); },
         floor);
    return;
  }
  observe(event.qubit, event.states, event.logits);
}

void drift_monitor::observe(const serve::readout_result& result) {
  if (result.engine == serve::engine_kind::fixed_q16) {
    serve::shard_event event;
    event.qubit = result.qubit;
    event.engine = result.engine;
    event.states = result.states;
    event.registers = result.registers;
    observe(event);
    return;
  }
  observe(result.qubit, result.states, result.logits);
}

serve::shard_callback drift_monitor::callback() {
  return [this](const serve::shard_event& event) { observe(event); };
}

void drift_monitor::set_baseline(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  KLINQ_REQUIRE(slot.window.shots > 0,
                "drift_monitor: cannot baseline an empty window");
  slot.baseline = slot.window;
  slot.window.clear();
}

void drift_monitor::rebaseline(std::size_t qubit,
                               std::span<const std::uint8_t> states,
                               std::span<const float> margins) {
  KLINQ_REQUIRE(states.size() == margins.size() && !states.empty(),
                "drift_monitor: rebaseline needs one margin per state");
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  slot.baseline.clear();
  fold(slot.baseline, states,
       [margins](std::size_t r) { return static_cast<double>(margins[r]); },
       0.0);
  slot.window.clear();
}

void drift_monitor::reset_window(std::size_t qubit) {
  qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  slot.window.clear();
}

drift_status drift_monitor::status_locked(const qubit_slot& slot) const {
  drift_status status;
  status.window_shots = slot.window.shots;
  status.class_balance = slot.window.class_balance();
  status.mean_abs_margin = slot.window.mean_abs_margin();
  status.median_abs_margin = slot.window.histogram.quantile(0.5);
  status.low_confidence_share =
      slot.window.shots > 0
          ? static_cast<double>(slot.window.low_margin) /
                static_cast<double>(slot.window.shots)
          : 0.0;
  status.baseline_shots = slot.baseline.shots;
  status.baseline_class_balance = slot.baseline.class_balance();
  status.baseline_mean_abs_margin = slot.baseline.mean_abs_margin();
  const bool judgeable =
      slot.baseline.shots > 0 &&
      slot.window.shots >= thresholds_.min_window_shots;
  if (judgeable) {
    status.balance_drifted =
        std::abs(status.class_balance - status.baseline_class_balance) >
        thresholds_.class_balance_delta;
    status.margin_collapsed =
        status.mean_abs_margin <
        (1.0 - thresholds_.margin_collapse_fraction) *
            status.baseline_mean_abs_margin;
    status.confidence_collapsed =
        status.low_confidence_share > thresholds_.low_confidence_fraction;
    status.drifted = status.balance_drifted || status.margin_collapsed ||
                     status.confidence_collapsed;
  }
  // Severity score: each proxy normalized so 1.0 sits exactly at its
  // threshold, the worst one wins. Unlike the booleans it does not wait for
  // min_window_shots — a small window just produces a noisy early score.
  if (slot.baseline.shots > 0 && slot.window.shots > 0) {
    double score = 0.0;
    if (thresholds_.class_balance_delta > 0.0) {
      score = std::max(
          score,
          std::abs(status.class_balance - status.baseline_class_balance) /
              thresholds_.class_balance_delta);
    }
    if (thresholds_.margin_collapse_fraction > 0.0 &&
        status.baseline_mean_abs_margin > 0.0) {
      const double collapse =
          1.0 - status.mean_abs_margin / status.baseline_mean_abs_margin;
      score = std::max(score,
                       collapse / thresholds_.margin_collapse_fraction);
    }
    if (thresholds_.low_confidence_fraction > 0.0) {
      score = std::max(score, status.low_confidence_share /
                                  thresholds_.low_confidence_fraction);
    }
    status.score = std::max(score, 0.0);
  }
  return status;
}

drift_status drift_monitor::status(std::size_t qubit) const {
  const qubit_slot& slot = slot_checked(qubit);
  const std::lock_guard lock(slot.mutex);
  return status_locked(slot);
}

std::vector<std::size_t> drift_monitor::drifted_qubits() const {
  std::vector<std::size_t> drifted;
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    if (status(q).drifted) drifted.push_back(q);
  }
  return drifted;
}

drift_monitor::~drift_monitor() { unbind_metrics(); }

void drift_monitor::bind_metrics(obs::metric_registry& metrics) {
  unbind_metrics();
  gauges_.assign(slots_.size(), gauge_cells{});
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    const obs::label_list labels{{"qubit", std::to_string(q)}};
    gauge_cells& cells = gauges_[q];
    cells.window_shots = &metrics.get_gauge(
        "klinq_drift_window_shots", labels,
        "Shots folded into the rolling observation window.");
    cells.class_balance = &metrics.get_gauge(
        "klinq_drift_class_balance", labels,
        "Fraction of |1> decisions in the observation window.");
    cells.mean_abs_margin = &metrics.get_gauge(
        "klinq_drift_mean_abs_margin", labels,
        "Mean |logit margin| of the observation window.");
    cells.low_confidence_share = &metrics.get_gauge(
        "klinq_drift_low_confidence_share", labels,
        "Window share of shots whose |margin| fell below the baseline-derived "
        "confidence floor.");
    cells.score = &metrics.get_gauge(
        "klinq_drift_score", labels,
        "Drift severity: worst label-free proxy normalized so 1.0 is exactly "
        "at its configured threshold.");
    cells.drifted = &metrics.get_gauge(
        "klinq_drift_drifted", labels,
        "1 while the qubit is flagged drifted (a proxy past threshold with "
        "enough window and baseline shots).");
  }
  collector_id_ = metrics.add_collector([this] {
    for (std::size_t q = 0; q < slots_.size(); ++q) {
      const drift_status s = status(q);
      const gauge_cells& cells = gauges_[q];
      cells.window_shots->set(static_cast<double>(s.window_shots));
      cells.class_balance->set(s.class_balance);
      cells.mean_abs_margin->set(s.mean_abs_margin);
      cells.low_confidence_share->set(s.low_confidence_share);
      cells.score->set(s.score);
      cells.drifted->set(s.drifted ? 1.0 : 0.0);
    }
  });
  metrics_ = &metrics;
}

void drift_monitor::unbind_metrics() {
  if (metrics_ != nullptr && collector_id_ != 0) {
    metrics_->remove_collector(collector_id_);
  }
  metrics_ = nullptr;
  collector_id_ = 0;
  gauges_.clear();
}

}  // namespace klinq::registry
