#include "klinq/registry/recalibrator.hpp"

#include <chrono>
#include <string_view>
#include <cmath>
#include <utility>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/fault/fault.hpp"

namespace klinq::registry {

namespace {

/// splitmix64 finalizer — deterministic backoff jitter without touching any
/// global RNG state (the retrain pipeline itself must stay reproducible).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Backoff before retry `attempt` (1-based) for `qubit`: base doubled per
/// attempt, jittered into [0.5, 1.5)× deterministically per (qubit,
/// attempt) so correlated fleet-wide failures decorrelate on retry.
double backoff_seconds(const recalibration_config& config, std::size_t qubit,
                       std::size_t attempt) {
  const double base = config.retry_backoff_seconds *
                      std::ldexp(1.0, static_cast<int>(attempt - 1));
  const std::uint64_t bits = mix64((static_cast<std::uint64_t>(qubit) << 16) ^
                                   static_cast<std::uint64_t>(attempt));
  const double jitter = 0.5 + static_cast<double>(bits % 1024) / 1024.0;
  return base * jitter;
}

}  // namespace

recalibrator::recalibrator(model_registry& registry, drift_monitor& monitor,
                           calibration_source source,
                           recalibration_config config)
    : registry_(registry),
      monitor_(monitor),
      source_(std::move(source)),
      config_(std::move(config)) {
  KLINQ_REQUIRE(source_ != nullptr,
                "recalibrator: calibration source required");
  KLINQ_REQUIRE(registry_.qubit_count() == monitor_.qubit_count(),
                "recalibrator: registry/monitor qubit count mismatch");
  KLINQ_REQUIRE(config_.poll_interval_seconds > 0.0,
                "recalibrator: poll interval must be positive");
  KLINQ_REQUIRE(std::isfinite(config_.retry_backoff_seconds) &&
                    config_.retry_backoff_seconds >= 0.0,
                "recalibrator: retry backoff must be finite and non-negative");
  KLINQ_REQUIRE(std::isfinite(config_.publish_regression_tolerance) &&
                    config_.publish_regression_tolerance >= 0.0,
                "recalibrator: regression tolerance must be finite and "
                "non-negative");
  KLINQ_REQUIRE(std::isfinite(config_.watchdog_seconds) &&
                    config_.watchdog_seconds >= 0.0,
                "recalibrator: watchdog must be finite and non-negative");
  init_metrics();
}

void recalibrator::init_metrics() {
  if (config_.metrics == nullptr) return;
  obs::metric_registry& metrics = *config_.metrics;
  scans_cell_ = &metrics.get_counter(
      "klinq_recal_scans_total", {},
      "Drift-monitor sweeps performed by the background worker.");
  recalibrations_cell_ = &metrics.get_counter(
      "klinq_recal_recalibrations_total", {},
      "Successful retrain+publish cycles (background and synchronous).");
  failures_cell_ =
      &metrics.get_counter("klinq_recal_failures_total", {},
                           "Recalibration cycles that threw.");
  retries_cell_ = &metrics.get_counter(
      "klinq_recal_retries_total", {},
      "Backoff re-attempts the background worker made after failed cycles.");
  publish_rejections_cell_ = &metrics.get_counter(
      "klinq_recal_publish_rejections_total", {},
      "Retrained candidates the publish gate refused (not failures).");
  hung_retrains_cell_ = &metrics.get_counter(
      "klinq_recal_hung_retrains_total", {},
      "Background attempts that overran watchdog_seconds and were detached.");
  const std::string_view help =
      "Wall time of one recalibrate() cycle, by outcome.";
  retrain_seconds_ok_ = &metrics.get_histogram("klinq_recal_retrain_seconds",
                                               {{"outcome", "ok"}}, help);
  retrain_seconds_rejected_ = &metrics.get_histogram(
      "klinq_recal_retrain_seconds", {{"outcome", "rejected"}}, help);
  retrain_seconds_failed_ = &metrics.get_histogram(
      "klinq_recal_retrain_seconds", {{"outcome", "failed"}}, help);
}

recalibrator::~recalibrator() { stop(); }

void recalibrator::start() {
  const std::lock_guard lock(mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { worker_loop(); });
}

void recalibrator::stop() {
  std::thread worker;
  {
    const std::lock_guard lock(mutex_);
    if (thread_.joinable()) {
      stop_requested_ = true;
      worker = std::move(thread_);
    }
  }
  if (worker.joinable()) {
    wake_.notify_all();
    worker.join();
    running_.store(false, std::memory_order_release);
  }
  // Drain watchdog-detached attempts: they borrow the registry/monitor/
  // source, so they must finish before our caller releases those borrows.
  // Blocking here is the price of having let them overrun — the watchdog
  // bounds the scan loop's latency, not the attempt's lifetime.
  std::vector<detached_attempt> detached;
  {
    const std::lock_guard lock(mutex_);
    detached.swap(detached_);
  }
  for (detached_attempt& attempt : detached) {
    try {
      attempt.task.get();
      log_info("hung recalibration of qubit ", attempt.qubit,
               " completed during stop()");
    } catch (const std::exception& e) {
      log_warn("hung recalibration of qubit ", attempt.qubit,
               " failed during stop(): ", e.what());
    }
  }
}

bool recalibrator::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t recalibrator::recalibrate(std::size_t qubit) {
  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };
  try {
    fault::trigger("recal.retrain");
    const data::trace_dataset calibration = source_(qubit);
    KLINQ_REQUIRE(calibration.size() > 1,
                  "recalibrator: empty calibration dataset");

    kd::student_config student_config = config_.student;
    // Warm start from the serving model: drift moves the feature
    // distribution gradually, so the old weights beat a fresh random draw.
    const snapshot_ptr previous = registry_.active(qubit);
    if (config_.warm_start && previous != nullptr) {
      student_config.warm_start = &previous->student().net();
    }
    kd::student_model student =
        kd::distill_student(calibration, {}, student_config);

    fault::trigger("recal.publish");
    const double candidate_accuracy = student.accuracy(calibration);
    if (previous != nullptr) {
      // Publish gate: both models score the same fresh calibration shots —
      // the only apples-to-apples comparison available. A candidate that
      // regresses past the tolerance never reaches the registry; the
      // serving model stays up and the rejection is visible in stats().
      const double serving_accuracy = previous->student().accuracy(calibration);
      if (candidate_accuracy + config_.publish_regression_tolerance <
          serving_accuracy) {
        publish_rejections_.fetch_add(1, std::memory_order_relaxed);
        bump(publish_rejections_cell_);
        throw recalibration_rejected(
            "recalibrator: qubit " + std::to_string(qubit) +
            " candidate accuracy " + std::to_string(candidate_accuracy) +
            " regresses past serving accuracy " +
            std::to_string(serving_accuracy) + " (tolerance " +
            std::to_string(config_.publish_regression_tolerance) + ")");
      }
    }

    calibration_info info;
    info.source = "recalibration";
    info.created_unix_seconds = unix_now();
    info.calibration_shots = calibration.size();
    info.train_accuracy = candidate_accuracy;

    const std::uint64_t version =
        registry_.publish(qubit, model_snapshot(std::move(student), info));

    // Rebaseline the monitor on the new model's own calibration margins
    // (fixed path — that is what serves), so the drift verdict resets and
    // the next window is judged against the fresh model.
    const snapshot_ptr published = registry_.at(qubit, version);
    std::vector<fx::q16_16> registers(calibration.size());
    published->hardware().logits(calibration, registers);
    std::vector<std::uint8_t> states(calibration.size());
    std::vector<float> margins(calibration.size());
    for (std::size_t r = 0; r < registers.size(); ++r) {
      states[r] = registers[r].sign_bit() ? 0 : 1;
      margins[r] = registers[r].to_float();
    }
    monitor_.rebaseline(qubit, states, margins);

    recalibrations_.fetch_add(1, std::memory_order_relaxed);
    bump(recalibrations_cell_);
    if (retrain_seconds_ok_ != nullptr) retrain_seconds_ok_->record(elapsed());
    log_info("recalibrated qubit ", qubit, " -> version ", version,
             " (accuracy ", info.train_accuracy, " on ",
             info.calibration_shots, " shots)");
    return version;
  } catch (const recalibration_rejected&) {
    // Gate rejections are counted by publish_rejections_, not failures_ —
    // the pipeline worked; the candidate just was not better.
    if (retrain_seconds_rejected_ != nullptr) {
      retrain_seconds_rejected_->record(elapsed());
    }
    throw;
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    bump(failures_cell_);
    if (retrain_seconds_failed_ != nullptr) {
      retrain_seconds_failed_->record(elapsed());
    }
    throw;
  }
}

recalibrator::attempt_outcome recalibrator::run_attempt(std::size_t qubit) {
  try {
    if (config_.watchdog_seconds <= 0.0) {
      recalibrate(qubit);
      return attempt_outcome::ok;
    }
    auto task = std::async(std::launch::async,
                           [this, qubit] { return recalibrate(qubit); });
    if (task.wait_for(std::chrono::duration<double>(
            config_.watchdog_seconds)) != std::future_status::ready) {
      // Hung: detach the attempt from the scan loop so one stuck retrain
      // (a blocking calibration_source, say) cannot stall the fleet. The
      // thread keeps running; its qubit is skipped until it finishes and
      // stop() drains whatever is still outstanding.
      hung_retrains_.fetch_add(1, std::memory_order_relaxed);
      bump(hung_retrains_cell_);
      log_error("recalibration of qubit ", qubit, " exceeded watchdog of ",
                config_.watchdog_seconds, "s; detaching the attempt");
      const std::lock_guard lock(mutex_);
      detached_.push_back({std::move(task), qubit});
      return attempt_outcome::hung;
    }
    task.get();
    return attempt_outcome::ok;
  } catch (const recalibration_rejected& e) {
    log_warn("recalibration of qubit ", qubit,
             " rejected by publish gate: ", e.what());
    return attempt_outcome::rejected;
  } catch (const std::exception& e) {
    // Counted by recalibrate(); keep scanning — one qubit's bad calibration
    // data (or a throwing user calibration_source) must not stall the
    // fleet, and nothing may escape the worker thread.
    log_warn("recalibration of qubit ", qubit, " failed: ", e.what());
    return attempt_outcome::failed;
  }
}

bool recalibrator::service_qubit(std::size_t qubit) {
  for (std::size_t attempt = 0;; ++attempt) {
    if (run_attempt(qubit) != attempt_outcome::failed) return true;
    if (attempt >= config_.max_retries) return true;  // give up this scan
    retries_.fetch_add(1, std::memory_order_relaxed);
    bump(retries_cell_);
    const auto backoff = std::chrono::duration<double>(
        backoff_seconds(config_, qubit, attempt + 1));
    std::unique_lock lock(mutex_);
    if (wake_.wait_for(lock, backoff, [this] { return stop_requested_; })) {
      return false;  // stop request interrupted the backoff
    }
  }
}

void recalibrator::worker_loop() {
  const auto interval =
      std::chrono::duration<double>(config_.poll_interval_seconds);
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    reap_detached_locked();
    lock.unlock();
    scans_.fetch_add(1, std::memory_order_relaxed);
    bump(scans_cell_);
    for (const std::size_t qubit : monitor_.drifted_qubits()) {
      {
        const std::lock_guard busy_lock(mutex_);
        if (stop_requested_) return;
        if (qubit_detached_locked(qubit)) continue;  // still hung from before
      }
      if (!service_qubit(qubit)) return;
    }
    lock.lock();
  }
}

void recalibrator::reap_detached_locked() {
  for (auto it = detached_.begin(); it != detached_.end();) {
    if (it->task.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++it;
      continue;
    }
    try {
      it->task.get();
      log_info("hung recalibration of qubit ", it->qubit,
               " eventually completed");
    } catch (const std::exception& e) {
      log_warn("hung recalibration of qubit ", it->qubit,
               " eventually failed: ", e.what());
    }
    it = detached_.erase(it);
  }
}

bool recalibrator::qubit_detached_locked(std::size_t qubit) const {
  for (const detached_attempt& attempt : detached_) {
    if (attempt.qubit == qubit) return true;
  }
  return false;
}

recalibration_stats recalibrator::stats() const {
  recalibration_stats snapshot;
  snapshot.scans = scans_.load(std::memory_order_relaxed);
  snapshot.recalibrations = recalibrations_.load(std::memory_order_relaxed);
  snapshot.failures = failures_.load(std::memory_order_relaxed);
  snapshot.retries = retries_.load(std::memory_order_relaxed);
  snapshot.publish_rejections =
      publish_rejections_.load(std::memory_order_relaxed);
  snapshot.hung_retrains = hung_retrains_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace klinq::registry
