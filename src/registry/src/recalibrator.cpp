#include "klinq/registry/recalibrator.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"

namespace klinq::registry {

recalibrator::recalibrator(model_registry& registry, drift_monitor& monitor,
                           calibration_source source,
                           recalibration_config config)
    : registry_(registry),
      monitor_(monitor),
      source_(std::move(source)),
      config_(std::move(config)) {
  KLINQ_REQUIRE(source_ != nullptr,
                "recalibrator: calibration source required");
  KLINQ_REQUIRE(registry_.qubit_count() == monitor_.qubit_count(),
                "recalibrator: registry/monitor qubit count mismatch");
  KLINQ_REQUIRE(config_.poll_interval_seconds > 0.0,
                "recalibrator: poll interval must be positive");
}

recalibrator::~recalibrator() { stop(); }

void recalibrator::start() {
  const std::lock_guard lock(mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { worker_loop(); });
}

void recalibrator::stop() {
  std::thread worker;
  {
    const std::lock_guard lock(mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    worker = std::move(thread_);
  }
  wake_.notify_all();
  worker.join();
  running_.store(false, std::memory_order_release);
}

bool recalibrator::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t recalibrator::recalibrate(std::size_t qubit) {
  try {
    const data::trace_dataset calibration = source_(qubit);
    KLINQ_REQUIRE(calibration.size() > 1,
                  "recalibrator: empty calibration dataset");

    kd::student_config student_config = config_.student;
    // Warm start from the serving model: drift moves the feature
    // distribution gradually, so the old weights beat a fresh random draw.
    const snapshot_ptr previous = registry_.active(qubit);
    if (config_.warm_start && previous != nullptr) {
      student_config.warm_start = &previous->student().net();
    }
    kd::student_model student =
        kd::distill_student(calibration, {}, student_config);

    calibration_info info;
    info.source = "recalibration";
    info.created_unix_seconds = unix_now();
    info.calibration_shots = calibration.size();
    info.train_accuracy = student.accuracy(calibration);

    const std::uint64_t version =
        registry_.publish(qubit, model_snapshot(std::move(student), info));

    // Rebaseline the monitor on the new model's own calibration margins
    // (fixed path — that is what serves), so the drift verdict resets and
    // the next window is judged against the fresh model.
    const snapshot_ptr published = registry_.at(qubit, version);
    std::vector<fx::q16_16> registers(calibration.size());
    published->hardware().logits(calibration, registers);
    std::vector<std::uint8_t> states(calibration.size());
    std::vector<float> margins(calibration.size());
    for (std::size_t r = 0; r < registers.size(); ++r) {
      states[r] = registers[r].sign_bit() ? 0 : 1;
      margins[r] = registers[r].to_float();
    }
    monitor_.rebaseline(qubit, states, margins);

    recalibrations_.fetch_add(1, std::memory_order_relaxed);
    log_info("recalibrated qubit ", qubit, " -> version ", version,
             " (accuracy ", info.train_accuracy, " on ",
             info.calibration_shots, " shots)");
    return version;
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

void recalibrator::worker_loop() {
  const auto interval =
      std::chrono::duration<double>(config_.poll_interval_seconds);
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    scans_.fetch_add(1, std::memory_order_relaxed);
    for (const std::size_t qubit : monitor_.drifted_qubits()) {
      try {
        recalibrate(qubit);
      } catch (const std::exception& e) {
        // Counted by recalibrate(); keep scanning — one qubit's bad
        // calibration data (or a throwing user calibration_source) must
        // not stall the fleet, and nothing may escape this thread.
        log_warn("recalibration of qubit ", qubit, " failed: ", e.what());
      }
    }
    lock.lock();
  }
}

recalibration_stats recalibrator::stats() const {
  recalibration_stats snapshot;
  snapshot.scans = scans_.load(std::memory_order_relaxed);
  snapshot.recalibrations = recalibrations_.load(std::memory_order_relaxed);
  snapshot.failures = failures_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace klinq::registry
