// Streaming per-qubit readout-drift detection.
//
// On a real device the readout distributions wander (resonator frequency
// shifts, amplifier gain drift), and a per-qubit model trained on stale
// calibration data degrades silently — the decisions keep coming, they are
// just wrong more often. Ground truth is unavailable in production, so the
// monitor watches label-free proxies of the logit distribution, folded in
// from serving traffic (plug callback() into server_config::on_shard, or
// feed results explicitly):
//
//   * class balance — fraction of |1⟩ decisions. A readout boundary moving
//     through the IQ clouds shows up as a balance shift long before anyone
//     re-measures fidelity.
//   * logit-margin statistics — mean |logit| plus a log-binned |logit|
//     histogram (median via quantile). Drifting clouds approach the
//     boundary, so margins collapse.
//   * confidence collapse — the fraction of shots whose |logit| falls below
//     a floor derived from the baseline's mean margin.
//
// Each qubit compares a rolling observation window against a baseline
// captured at calibration time (set_baseline / rebaseline). status() flags
// a qubit when any proxy crosses its configured threshold; the background
// recalibrator polls drifted_qubits() and closes the loop.
//
// Thread-safety: all entry points are safe to call concurrently; state is
// per-qubit mutex-guarded (observation happens on serving worker threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "klinq/obs/metrics.hpp"
#include "klinq/serve/request.hpp"
#include "klinq/serve/telemetry.hpp"

namespace klinq::registry {

struct drift_thresholds {
  /// Minimum window shots before a qubit may be flagged (variance guard).
  std::size_t min_window_shots = 256;
  /// Flag when |window class balance − baseline class balance| exceeds this.
  double class_balance_delta = 0.15;
  /// Flag when the window's mean |margin| falls below
  /// (1 − margin_collapse_fraction) × the baseline's mean |margin|.
  double margin_collapse_fraction = 0.5;
  /// "Low confidence" = |margin| below low_margin_ratio × baseline mean.
  double low_margin_ratio = 0.25;
  /// Flag when the low-confidence share of the window exceeds this.
  double low_confidence_fraction = 0.5;
};

/// Point-in-time drift assessment of one qubit.
struct drift_status {
  std::uint64_t window_shots = 0;
  double class_balance = 0.0;
  double mean_abs_margin = 0.0;
  double median_abs_margin = 0.0;
  double low_confidence_share = 0.0;
  std::uint64_t baseline_shots = 0;
  double baseline_class_balance = 0.0;
  double baseline_mean_abs_margin = 0.0;
  bool balance_drifted = false;
  bool margin_collapsed = false;
  bool confidence_collapsed = false;
  /// Any of the above, with both window and baseline past min_window_shots.
  bool drifted = false;
  /// Scalar drift severity: the worst proxy's distance toward (and past) its
  /// configured threshold, normalized so 1.0 is exactly at the threshold.
  /// Computed whenever a baseline exists — even before min_window_shots —
  /// so dashboards can watch drift build up before the boolean flips.
  double score = 0.0;
};

class drift_monitor {
 public:
  explicit drift_monitor(std::size_t qubit_count,
                         drift_thresholds thresholds = {});

  /// Unbinds the metrics collector (if bound).
  ~drift_monitor();

  drift_monitor(const drift_monitor&) = delete;
  drift_monitor& operator=(const drift_monitor&) = delete;

  std::size_t qubit_count() const noexcept { return slots_.size(); }
  const drift_thresholds& thresholds() const noexcept { return thresholds_; }

  /// Folds one batch of decisions + logit margins into the qubit's window.
  /// `margins` are the engine's native logits (sign included; the monitor
  /// uses |margin|), one per state.
  void observe(std::size_t qubit, std::span<const std::uint8_t> states,
               std::span<const float> margins);

  /// Adapters from the serving layer: fixed registers are converted to
  /// float margins, float logits pass through.
  void observe(const serve::shard_event& event);
  void observe(const serve::readout_result& result);

  /// A shard callback that feeds this monitor — assign to
  /// server_config::on_shard (the monitor must outlive the server).
  serve::shard_callback callback();

  /// Promotes the current window to the baseline and clears the window —
  /// call once representative post-calibration traffic has flowed.
  void set_baseline(std::size_t qubit);

  /// Replaces the baseline directly from labeled calibration output (the
  /// recalibrator evaluates the freshly published model on its calibration
  /// set) and clears the window.
  void rebaseline(std::size_t qubit, std::span<const std::uint8_t> states,
                  std::span<const float> margins);

  void reset_window(std::size_t qubit);

  drift_status status(std::size_t qubit) const;

  /// Qubits whose status().drifted is set, ascending.
  std::vector<std::size_t> drifted_qubits() const;

  /// Publishes per-qubit gauges into `metrics`, refreshed at snapshot time
  /// through a collector: klinq_drift_window_shots, klinq_drift_class_balance,
  /// klinq_drift_mean_abs_margin, klinq_drift_low_confidence_share,
  /// klinq_drift_score and klinq_drift_drifted, each labeled {qubit}. The
  /// monitor must outlive the binding (the destructor unbinds, or call
  /// unbind_metrics() earlier). Rebinding replaces the previous binding.
  void bind_metrics(obs::metric_registry& metrics);
  void unbind_metrics();

 private:
  struct accumulator {
    std::uint64_t shots = 0;
    std::uint64_t ones = 0;
    std::uint64_t low_margin = 0;
    double sum_abs_margin = 0.0;
    /// |margin| distribution, log-binned (the serve histogram's 1e-7..100
    /// span covers every sane logit scale).
    serve::latency_histogram histogram;

    void clear();
    double mean_abs_margin() const;
    double class_balance() const;
  };

  struct qubit_slot {
    mutable std::mutex mutex;
    accumulator window;
    accumulator baseline;
  };

  qubit_slot& slot_checked(std::size_t qubit) const;
  drift_status status_locked(const qubit_slot& slot) const;
  /// One accumulation loop for every ingest path; `margin_at(r)` hands back
  /// shot r's logit margin (float span or fixed register, engine-specific).
  template <class MarginAt>
  static void fold(accumulator& into, std::span<const std::uint8_t> states,
                   MarginAt margin_at, double low_margin_floor);

  /// Pre-resolved gauge cells for one qubit's bind_metrics() families.
  struct gauge_cells {
    obs::gauge* window_shots = nullptr;
    obs::gauge* class_balance = nullptr;
    obs::gauge* mean_abs_margin = nullptr;
    obs::gauge* low_confidence_share = nullptr;
    obs::gauge* score = nullptr;
    obs::gauge* drifted = nullptr;
  };

  drift_thresholds thresholds_;
  std::vector<std::unique_ptr<qubit_slot>> slots_;

  obs::metric_registry* metrics_ = nullptr;
  std::vector<gauge_cells> gauges_;
  std::uint64_t collector_id_ = 0;
};

}  // namespace klinq::registry
