// Versioned per-qubit model registry with atomic RCU-style hot-swap.
//
// The registry converts the readout server from a static inference
// appliance into an operable fleet component: every qubit holds a bounded
// history of published model snapshots, one of which is *active*. Serving
// traffic acquires the active snapshot through the serve::engine_provider
// interface — one atomic shared_ptr load per request, no reader locks —
// and pins it for the request's lifetime, so:
//
//   * publish/activate/rollback happen while traffic flows: in-flight
//     requests finish on the snapshot they started with, new submits pick
//     up the new version (RCU — the lease's shared_ptr is the grace
//     period);
//   * a retired version's memory is reclaimed when the last lease drops it;
//   * the shot hot path never touches the registry at all (acquisition is
//     per request, and the leased engine pointers are plain const reads).
//
// Lifecycle operations:
//   publish   — append a new version; becomes active unless the qubit is
//               pinned (a pinned qubit keeps serving its pinned version,
//               new publishes wait in the history for an explicit swap).
//   activate  — swap the active version to any retained one.
//   rollback  — activate the newest retained version older than the active
//               one (the one-step undo after a bad publish).
//   pin/unpin — freeze the served version against auto-activation.
//
// Retention: at most `keep_versions` snapshots per qubit; the oldest
// non-active versions are retired first. Retired versions disappear from
// list()/at() but stay alive for any in-flight lease.
//
// Persistence: save_directory writes one "qubit<q>_v<version>.snap" file
// per retained snapshot (data::versioned_snapshot_filename) plus a
// "registry.manifest" recording active/pinned state. Saves are crash-safe:
// every file is written to a temporary sibling, fsynced and atomically
// renamed into place, with the manifest rename as the commit point — a
// crash at any instant leaves either the previous save or the new one on
// disk, never a torn mix. load_directory is correspondingly tolerant: a
// corrupt, truncated or hash-mismatched snapshot is quarantined (renamed to
// "*.bad") instead of failing the open, and a qubit whose recorded active
// version cannot be verified falls back to its newest verifiable version
// (foreign files in the directory are ignored as before).
//
// Self-healing: the serving layer reports repeated shard failures through
// engine_provider::demote(); the registry responds by rolling the qubit
// back to the newest older retained version and marking it degraded() until
// an explicit lifecycle action (publish/activate/rollback/pin) restores
// confidence.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "klinq/obs/metrics.hpp"
#include "klinq/registry/snapshot.hpp"
#include "klinq/serve/engine_provider.hpp"

namespace klinq::registry {

using snapshot_ptr = std::shared_ptr<const model_snapshot>;

struct registry_config {
  /// Retained versions per qubit (≥ 1). The active version is never
  /// retired, even when it is the oldest.
  std::size_t keep_versions = 4;
  /// Metrics backend (borrowed; must outlive the registry). When set, the
  /// registry mirrors its lifecycle counters as labeled families
  /// (klinq_registry_publishes_total{qubit}, ..._activations_total,
  /// ..._rollbacks_total, ..._demotions_total, ..._acquires_total,
  /// ..._quarantined_total) and publishes per-qubit
  /// klinq_registry_active_version / klinq_registry_degraded gauges,
  /// refreshed at snapshot time through a collector. Null disables the
  /// mirror; registry_stats works either way.
  obs::metric_registry* metrics = nullptr;
};

/// One row of list(): a retained version's metadata plus its role.
struct version_record {
  std::uint64_t version = 0;
  bool active = false;
  bool pinned = false;
  calibration_info info;
};

struct registry_stats {
  std::uint64_t published = 0;
  /// Active-version changes from any source (publish auto-activation,
  /// explicit activate, rollback, pin, demote).
  std::uint64_t activations = 0;
  /// Rollbacks from any source (explicit rollback() plus demote()).
  std::uint64_t rollbacks = 0;
  /// Leases handed to the serving layer.
  std::uint64_t acquires = 0;
  /// Serve-reported health demotions that actually switched a version.
  std::uint64_t demotions = 0;
  /// Snapshot files load_directory renamed to "*.bad" because they were
  /// corrupt, truncated or failed hash verification.
  std::uint64_t quarantined = 0;
};

class model_registry final : public serve::engine_provider {
 public:
  explicit model_registry(std::size_t qubit_count,
                          registry_config config = {});

  /// Unbinds the gauge collector from registry_config::metrics (if any).
  ~model_registry() override;

  model_registry(const model_registry&) = delete;
  model_registry& operator=(const model_registry&) = delete;

  // --- serve::engine_provider ---------------------------------------------
  std::size_t qubit_count() const noexcept override { return slots_.size(); }
  /// Lease on the active snapshot: one atomic load, no locks. Throws
  /// invalid_argument_error when the qubit has no published version yet.
  serve::engine_lease acquire(std::size_t qubit) const override;
  /// Health feedback from the serving layer: rolls the qubit back to the
  /// newest retained version older than `version` and marks it degraded.
  /// No-op (returns false) when `version` is no longer the active one —
  /// another thread or an admin already moved the qubit on. When nothing
  /// older is retained the qubit keeps serving but is still flagged
  /// degraded.
  bool demote(std::size_t qubit, std::uint64_t version) const noexcept override;

  // --- lifecycle ----------------------------------------------------------
  /// Appends `snapshot` as the qubit's next version (stamping
  /// info().version) and returns that version. Activates it immediately
  /// unless the qubit is pinned.
  std::uint64_t publish(std::size_t qubit, model_snapshot snapshot);

  /// The active snapshot (null when none is published yet) / its version.
  snapshot_ptr active(std::size_t qubit) const;
  std::uint64_t active_version(std::size_t qubit) const;

  /// A retained version's snapshot; throws when unknown or retired.
  snapshot_ptr at(std::size_t qubit, std::uint64_t version) const;

  /// Swaps the active version (throws when unknown or retired). Does not
  /// change the pinned flag: activating a pinned qubit re-pins to the new
  /// version (an explicit admin swap outranks the freeze).
  void activate(std::size_t qubit, std::uint64_t version);

  /// Activates the newest retained version older than the active one and
  /// returns it; throws when there is none.
  std::uint64_t rollback(std::size_t qubit);

  /// Freezes serving on `version` (activates it first): publishes still
  /// append to the history but no longer auto-activate.
  void pin(std::size_t qubit, std::uint64_t version);
  void unpin(std::size_t qubit);
  bool pinned(std::size_t qubit) const;

  /// True after demote() flagged the qubit; cleared by any explicit
  /// lifecycle action (publish/activate/rollback/pin).
  bool degraded(std::size_t qubit) const;

  /// Retained versions, oldest first.
  std::vector<version_record> list(std::size_t qubit) const;

  registry_stats stats() const;

  // --- persistence --------------------------------------------------------
  void save_directory(const std::string& directory) const;
  /// `base` seeds the loaded registry's configuration (notably
  /// base.metrics); the manifest's recorded keep_versions wins over
  /// base.keep_versions.
  static std::unique_ptr<model_registry> load_directory(
      const std::string& directory, registry_config base = {});

 private:
  struct qubit_slot {
    /// Guards everything below except `active`, which writers store and
    /// acquire() loads atomically.
    mutable std::mutex mutex;
    std::vector<std::pair<std::uint64_t, snapshot_ptr>> versions;  // ascending
    snapshot_ptr active;
    std::uint64_t next_version = 1;
    bool pinned = false;
    /// Set by demote(); cleared by explicit lifecycle actions.
    bool degraded = false;
  };

  /// Pre-resolved per-qubit counter cells in config_.metrics. Empty when
  /// the registry runs without a metrics backend; inc through bump() so
  /// every site stays null-safe.
  struct metric_cells {
    obs::counter* publishes = nullptr;
    obs::counter* activations = nullptr;
    obs::counter* rollbacks = nullptr;
    obs::counter* demotions = nullptr;
    obs::gauge* active_version = nullptr;
    obs::gauge* degraded = nullptr;
  };

  qubit_slot& slot_checked(std::size_t qubit);
  const qubit_slot& slot_checked(std::size_t qubit) const;
  /// Requires slot.mutex held. `qubit` indexes the metric cells (slots do
  /// not know their own position).
  void activate_locked(qubit_slot& slot, std::size_t qubit,
                       std::uint64_t version);
  void retire_locked(qubit_slot& slot);
  static snapshot_ptr load_active(const qubit_slot& slot);

  void init_metrics();
  static void bump(obs::counter* cell) {
    if (cell != nullptr) cell->inc();
  }

  registry_config config_;
  /// unique_ptr keeps slot addresses stable (mutexes are not movable).
  std::vector<std::unique_ptr<qubit_slot>> slots_;

  std::vector<metric_cells> cells_;
  obs::counter* acquires_cell_ = nullptr;
  obs::counter* quarantined_cell_ = nullptr;
  /// Collector refreshing the active-version / degraded gauges at snapshot
  /// time; 0 when no metrics backend is bound.
  std::uint64_t collector_id_ = 0;

  std::atomic<std::uint64_t> published_{0};
  /// activations_/rollbacks_/demotions_ are mutable because demote() is
  /// const (the engine_provider interface hands the server a const view)
  /// yet performs a sanctioned state change.
  mutable std::atomic<std::uint64_t> activations_{0};
  mutable std::atomic<std::uint64_t> rollbacks_{0};
  mutable std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  mutable std::atomic<std::uint64_t> acquires_{0};
};

}  // namespace klinq::registry
