// One versioned, immutable per-qubit model snapshot: the deployable unit
// the registry stores, hot-swaps and persists.
//
// A snapshot bundles the distilled float student with its quantized Q16.16
// hardware twin (rebuilt deterministically from the student, exactly like
// core::qubit_discriminator) plus calibration metadata describing where the
// model came from. Snapshots are immutable once published — the serving hot
// path reads their engine pointers concurrently with zero synchronization,
// and the registry's RCU reclamation relies on nobody mutating a live one.
//
// On-disk format (little-endian):
//   magic "KLNQSNP1" | u64 format version |
//   metadata: u64 model version | string source | f64 created_unix_seconds |
//             u64 calibration_shots | f64 train_accuracy |
//   u64 quantized parameter hash | student payload (kd::student_model::save:
//   feature pipeline + nn::serialize network)
// The parameter hash is recomputed after requantizing the loaded student and
// must match — a file whose quantization no longer reproduces the recorded
// registers is rejected (io_error) instead of silently serving different
// decisions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "klinq/fixed/fixed.hpp"
#include "klinq/hw/fixed_discriminator.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/serve/request.hpp"

namespace klinq::registry {

/// Where a snapshot's model came from and how good it looked at build time.
struct calibration_info {
  /// Registry-assigned at publish (0 = not yet published).
  std::uint64_t version = 0;
  /// Free-form provenance tag; the library uses "initial" (built from a
  /// trained system), "recalibration" (background retrain) and "import"
  /// (loaded from disk without a manifest entry).
  std::string source = "initial";
  /// Wall-clock build time (seconds since the Unix epoch; 0 = unknown).
  double created_unix_seconds = 0.0;
  /// Labeled shots the model was calibrated/retrained on.
  std::uint64_t calibration_shots = 0;
  /// Student assignment accuracy on the calibration set at build time.
  double train_accuracy = 0.0;
};

/// Seconds since the Unix epoch, for stamping calibration_info.
double unix_now();

class model_snapshot {
 public:
  model_snapshot() = default;

  /// Wraps a distilled student and quantizes its Q16.16 hardware twin.
  explicit model_snapshot(kd::student_model student,
                          calibration_info info = {});

  const kd::student_model& student() const noexcept { return student_; }
  const hw::fixed_discriminator<fx::q16_16>& hardware() const noexcept {
    return hardware_;
  }
  const calibration_info& info() const noexcept { return info_; }

  /// Serving handles into this snapshot — valid only while the snapshot
  /// object stays alive and at this address (the registry hands snapshots
  /// out as shared_ptr for exactly that reason).
  serve::qubit_engine engines() const noexcept {
    return {&student_, &hardware_};
  }

  /// Integrity fingerprint of the quantized network (see quantized_network
  /// ::parameter_hash).
  std::uint64_t quantized_hash() const noexcept {
    return hardware_.net().parameter_hash();
  }

  void save(std::ostream& out) const;
  static model_snapshot load(std::istream& in);

 private:
  friend class model_registry;  // stamps info_.version at publish

  kd::student_model student_;
  hw::fixed_discriminator<fx::q16_16> hardware_;
  calibration_info info_;
};

}  // namespace klinq::registry
