// Background recalibration worker: the closed drift→retrain→swap loop.
//
// A running recalibrator polls the drift monitor; when a qubit is flagged it
// pulls that qubit's recent labeled calibration shots from the caller's
// calibration_source, re-distills a student on them (kd::distill_student,
// warm-started from the currently active model's weights by default),
// publishes the result through the registry — live traffic hot-swaps onto
// it at the next submit, in-flight requests finish on the old snapshot —
// and rebaselines the monitor on the new model's own calibration margins so
// the drift verdict resets.
//
// recalibrate(qubit) runs the same pipeline synchronously (deterministic
// tests, admin tooling). Retraining happens on the recalibrator's thread
// but the inner training loops use the shared pool like everything else.
//
// Robustness: a publish gate rejects candidates whose accuracy regresses
// past publish_regression_tolerance below the serving model's on the same
// calibration set (throwing recalibration_rejected — counted separately
// from failures); the background worker retries transient failures with
// exponential backoff and deterministic jitter; an optional watchdog
// bounds each background attempt's wall time and flags attempts that
// overrun as hung (the overrunning attempt keeps running detached from the
// scan loop, its qubit is skipped until it finishes, and stop() drains it).
//
// The registry, monitor and calibration source are borrowed and must
// outlive the recalibrator; the destructor stops the worker first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/data/trace_dataset.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/registry/drift_monitor.hpp"
#include "klinq/registry/model_registry.hpp"

namespace klinq::registry {

/// The publish gate refused a retrained candidate because its accuracy on
/// the calibration set regressed past publish_regression_tolerance below
/// the currently serving model's. Not a failure of the pipeline — the
/// serving model simply stays the better choice.
class recalibration_rejected : public error {
 public:
  explicit recalibration_rejected(const std::string& what) : error(what) {}
};

struct recalibration_config {
  /// Retraining hyperparameters (epochs, lr, distillation off by default —
  /// recalibration runs on hard labels from fresh calibration shots).
  kd::student_config student{};
  /// Drift-monitor polling cadence of the background worker.
  double poll_interval_seconds = 0.02;
  /// Initialize retraining from the active model's weights (see
  /// student_config::warm_start). Disable to retrain from scratch.
  bool warm_start = true;
  /// Extra attempts the background worker makes after a failed cycle
  /// (synchronous recalibrate() never retries — the caller owns policy).
  std::size_t max_retries = 2;
  /// Base delay before the first retry; doubled per further retry and
  /// jittered ±50% (deterministically, from the qubit/attempt pair) so a
  /// fleet-wide fault does not resynchronize every qubit's retrain.
  double retry_backoff_seconds = 0.05;
  /// Candidate models may be this much worse (absolute accuracy on the
  /// fresh calibration set) than the serving model before the publish gate
  /// rejects them. 0 demands strict non-regression.
  double publish_regression_tolerance = 0.02;
  /// Wall-clock bound on one background attempt; an attempt still running
  /// after this is counted hung and detached (its qubit is skipped until
  /// it finishes). 0 disables the watchdog (attempts run inline on the
  /// worker thread).
  double watchdog_seconds = 0.0;
  /// Metrics backend (borrowed; must outlive the recalibrator). When set,
  /// the stats() counters are mirrored as klinq_recal_*_total families and
  /// every recalibrate() call records its wall time into the
  /// klinq_recal_retrain_seconds histogram, labeled by outcome
  /// {outcome="ok"|"rejected"|"failed"}. Null disables the mirror.
  obs::metric_registry* metrics = nullptr;
};

struct recalibration_stats {
  /// Drift-monitor sweeps performed by the background worker.
  std::uint64_t scans = 0;
  /// Successful retrain+publish cycles (background and synchronous).
  std::uint64_t recalibrations = 0;
  /// Cycles that threw (bad calibration data, say); the worker logs and
  /// keeps going.
  std::uint64_t failures = 0;
  /// Backoff re-attempts the background worker made after failed cycles.
  std::uint64_t retries = 0;
  /// Candidates the publish gate refused (not counted in failures).
  std::uint64_t publish_rejections = 0;
  /// Background attempts that overran watchdog_seconds.
  std::uint64_t hung_retrains = 0;
};

class recalibrator {
 public:
  /// Hands back one qubit's recent labeled calibration shots. Called from
  /// the worker thread; must be thread-safe and may block (e.g. while
  /// collecting shots).
  using calibration_source =
      std::function<data::trace_dataset(std::size_t qubit)>;

  recalibrator(model_registry& registry, drift_monitor& monitor,
               calibration_source source, recalibration_config config = {});

  /// Stops the worker (blocking until it exits) before releasing borrows.
  ~recalibrator();

  recalibrator(const recalibrator&) = delete;
  recalibrator& operator=(const recalibrator&) = delete;

  /// Starts the background worker (idempotent).
  void start();
  /// Stops it and joins (idempotent; start() may be called again after).
  /// Also blocks until any watchdog-detached attempt finishes — they borrow
  /// the registry/monitor/source and may not outlive this object.
  void stop();
  bool running() const noexcept;

  /// Synchronously retrains `qubit` from its calibration source, publishes
  /// the new snapshot and rebaselines the monitor. Returns the published
  /// version. Throws on empty calibration data or training failure.
  std::uint64_t recalibrate(std::size_t qubit);

  recalibration_stats stats() const;

 private:
  enum class attempt_outcome { ok, failed, rejected, hung };

  /// A watchdog-detached attempt still running on its own thread.
  struct detached_attempt {
    std::future<std::uint64_t> task;
    std::size_t qubit = 0;
  };

  void worker_loop();
  /// One drifted qubit's full service: watchdogged attempt + retry loop.
  /// Returns false when a stop request interrupted the backoff.
  bool service_qubit(std::size_t qubit);
  attempt_outcome run_attempt(std::size_t qubit);
  void init_metrics();
  static void bump(obs::counter* cell) {
    if (cell != nullptr) cell->inc();
  }
  /// Collects detached attempts that have since finished. Requires mutex_.
  void reap_detached_locked();
  bool qubit_detached_locked(std::size_t qubit) const;

  model_registry& registry_;
  drift_monitor& monitor_;
  calibration_source source_;
  recalibration_config config_;

  mutable std::mutex mutex_;  // guards thread_ lifecycle, stop flag, detached_
  std::condition_variable wake_;
  std::thread thread_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::vector<detached_attempt> detached_;

  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> recalibrations_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> publish_rejections_{0};
  std::atomic<std::uint64_t> hung_retrains_{0};

  /// Pre-resolved cells in config_.metrics; all null when unset (bump() and
  /// the recalibrate() timing block are null-safe).
  obs::counter* scans_cell_ = nullptr;
  obs::counter* recalibrations_cell_ = nullptr;
  obs::counter* failures_cell_ = nullptr;
  obs::counter* retries_cell_ = nullptr;
  obs::counter* publish_rejections_cell_ = nullptr;
  obs::counter* hung_retrains_cell_ = nullptr;
  obs::log_histogram* retrain_seconds_ok_ = nullptr;
  obs::log_histogram* retrain_seconds_rejected_ = nullptr;
  obs::log_histogram* retrain_seconds_failed_ = nullptr;
};

}  // namespace klinq::registry
