// Background recalibration worker: the closed drift→retrain→swap loop.
//
// A running recalibrator polls the drift monitor; when a qubit is flagged it
// pulls that qubit's recent labeled calibration shots from the caller's
// calibration_source, re-distills a student on them (kd::distill_student,
// warm-started from the currently active model's weights by default),
// publishes the result through the registry — live traffic hot-swaps onto
// it at the next submit, in-flight requests finish on the old snapshot —
// and rebaselines the monitor on the new model's own calibration margins so
// the drift verdict resets.
//
// recalibrate(qubit) runs the same pipeline synchronously (deterministic
// tests, admin tooling). Retraining happens on the recalibrator's thread
// but the inner training loops use the shared pool like everything else.
//
// The registry, monitor and calibration source are borrowed and must
// outlive the recalibrator; the destructor stops the worker first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/registry/drift_monitor.hpp"
#include "klinq/registry/model_registry.hpp"

namespace klinq::registry {

struct recalibration_config {
  /// Retraining hyperparameters (epochs, lr, distillation off by default —
  /// recalibration runs on hard labels from fresh calibration shots).
  kd::student_config student{};
  /// Drift-monitor polling cadence of the background worker.
  double poll_interval_seconds = 0.02;
  /// Initialize retraining from the active model's weights (see
  /// student_config::warm_start). Disable to retrain from scratch.
  bool warm_start = true;
};

struct recalibration_stats {
  /// Drift-monitor sweeps performed by the background worker.
  std::uint64_t scans = 0;
  /// Successful retrain+publish cycles (background and synchronous).
  std::uint64_t recalibrations = 0;
  /// Cycles that threw (bad calibration data, say); the worker logs and
  /// keeps going.
  std::uint64_t failures = 0;
};

class recalibrator {
 public:
  /// Hands back one qubit's recent labeled calibration shots. Called from
  /// the worker thread; must be thread-safe and may block (e.g. while
  /// collecting shots).
  using calibration_source =
      std::function<data::trace_dataset(std::size_t qubit)>;

  recalibrator(model_registry& registry, drift_monitor& monitor,
               calibration_source source, recalibration_config config = {});

  /// Stops the worker (blocking until it exits) before releasing borrows.
  ~recalibrator();

  recalibrator(const recalibrator&) = delete;
  recalibrator& operator=(const recalibrator&) = delete;

  /// Starts the background worker (idempotent).
  void start();
  /// Stops it and joins (idempotent; start() may be called again after).
  void stop();
  bool running() const noexcept;

  /// Synchronously retrains `qubit` from its calibration source, publishes
  /// the new snapshot and rebaselines the monitor. Returns the published
  /// version. Throws on empty calibration data or training failure.
  std::uint64_t recalibrate(std::size_t qubit);

  recalibration_stats stats() const;

 private:
  void worker_loop();

  model_registry& registry_;
  drift_monitor& monitor_;
  calibration_source source_;
  recalibration_config config_;

  mutable std::mutex mutex_;  // guards thread_ lifecycle + stop flag
  std::condition_variable wake_;
  std::thread thread_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> recalibrations_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace klinq::registry
