// Readout-fidelity metrics (paper §III-A).
//
// The paper's primary metric is the geometric mean of per-qubit assignment
// fidelities, F_GM = (∏ F_i)^{1/N}; Table I reports F5Q (all qubits) and
// F4Q (excluding the noisy qubit 2).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace klinq::core {

struct fidelity_report {
  std::string label;
  std::vector<double> per_qubit;

  /// Geometric mean across all qubits (F5Q for the 5-qubit system).
  double geometric_mean_all() const;

  /// Geometric mean excluding one qubit (F4Q excludes index 1 ≡ qubit 2).
  double geometric_mean_excluding(std::size_t excluded_qubit) const;
};

/// Prints a Table-I-style row: label, per-qubit fidelities, F5Q, F4Q.
void print_fidelity_row(const fidelity_report& report, std::ostream& out);

/// Prints the Table-I-style header for `qubit_count` qubits.
void print_fidelity_header(std::size_t qubit_count, std::ostream& out);

}  // namespace klinq::core
