// KLiNQ system facade: one compact discriminator per qubit, independently
// trained and independently measurable — the property that enables
// mid-circuit measurement (paper §I contribution 2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include <memory>

#include "klinq/core/fidelity.hpp"
#include "klinq/core/qubit_discriminator.hpp"
#include "klinq/kd/teacher.hpp"
#include "klinq/qsim/dataset_builder.hpp"
#include "klinq/registry/model_registry.hpp"
#include "klinq/serve/readout_server.hpp"

namespace klinq::core {

struct system_config {
  /// Device, shot counts and generation seed.
  qsim::dataset_spec dataset;
  kd::teacher_config teacher{};
  std::uint64_t student_seed = 7;
  /// false ⇒ hard-label-only students (ablation).
  bool use_distillation = true;
  /// Teacher cache directory ("" disables; default honours KLINQ_CACHE_DIR).
  std::string cache_dir = "env";
};

class klinq_system {
 public:
  /// Trains one student per qubit: generate data → (cached) teacher →
  /// distill → quantize to Q16.16.
  static klinq_system train(const system_config& config);

  std::size_t qubit_count() const noexcept { return discriminators_.size(); }

  const qubit_discriminator& discriminator(std::size_t qubit) const;

  /// Independent (mid-circuit capable) hardware-path measurement of one
  /// qubit from its channel trace.
  bool measure(std::size_t qubit, std::span<const float> trace,
               std::size_t samples_per_quadrature) const;

  /// Allocation-free variant for repeated-measurement loops; `scratch` is
  /// reusable across qubits and shots.
  bool measure(std::size_t qubit, std::span<const float> trace,
               std::size_t samples_per_quadrature,
               qubit_discriminator::measurement_scratch& scratch) const;

  /// Non-owning serving handles for every qubit's deployed models, in qubit
  /// order — the constructor argument of serve::readout_server. The system
  /// must outlive any server built on them.
  std::vector<serve::qubit_engine> serve_engines() const;

  /// Builds a versioned model registry seeded with a copy of every qubit's
  /// current student as version 1 ("initial"). The registry owns its
  /// snapshots, so it may outlive this system; build a hot-swappable server
  /// with serve::readout_server(*registry) and publish recalibrated
  /// versions while it runs.
  std::unique_ptr<registry::model_registry> make_registry(
      registry::registry_config config = {}) const;

  /// Sharded multi-qubit measurement: one trace block per qubit (null to
  /// skip a qubit), evaluated concurrently through a serve::readout_server
  /// on the global pool. decisions[q][r] is qubit q's hard decision for
  /// trace r (1 = state |1⟩); bit-identical to the serial per-qubit
  /// measure_batch. Long-lived streaming callers should hold their own
  /// readout_server (built on serve_engines()) instead of paying this
  /// convenience wrapper's per-call server setup.
  std::vector<std::vector<std::uint8_t>> measure_batch(
      std::span<const data::trace_dataset* const> per_qubit_traces,
      serve::engine_kind engine = serve::engine_kind::fixed_q16) const;

  /// Regenerates each qubit's test split and scores the fixed-point path.
  fidelity_report evaluate(const qsim::dataset_spec& spec,
                           const std::string& label = "KLiNQ") const;

  /// Persists one student file per qubit under `directory`.
  void save_directory(const std::string& directory) const;
  static klinq_system load_directory(const std::string& directory,
                                     std::size_t qubit_count);

 private:
  std::vector<qubit_discriminator> discriminators_;
};

}  // namespace klinq::core
