// Training orchestration shared by benches and the system facade.
//
// The heavy artifact is the per-qubit teacher (1.63 M parameters); it is
// trained once per (device, shots, seed, teacher-config, qubit) and cached.
// Students are cheap and are re-distilled per trace duration — soft labels
// always come from the full-duration teacher (the teacher observed the whole
// 1 µs trace of the same shots; distilling its knowledge into a student that
// only sees a prefix is privileged-information distillation and avoids
// retraining five teachers per duration point).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "klinq/core/cache.hpp"
#include "klinq/core/presets.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/kd/teacher.hpp"
#include "klinq/qsim/dataset_builder.hpp"

namespace klinq::core {

/// Canonical config string for cache keying (covers every field that
/// changes the trained teacher).
std::string teacher_cache_key(const qsim::dataset_spec& spec,
                              std::size_t qubit,
                              const kd::teacher_config& config);

/// Loads the teacher from cache or trains it on `train` and stores it.
kd::teacher_model obtain_teacher(const qsim::dataset_spec& spec,
                                 std::size_t qubit,
                                 const data::trace_dataset& train,
                                 const kd::teacher_config& config,
                                 artifact_cache& cache);

/// Distills a student for one qubit at a given trace duration. `full_train`
/// and `teacher_logits` are at the full generated duration; the trace is
/// sliced internally. Pass use_distillation = false for the hard-label-only
/// ablation.
kd::student_model distill_for_duration(const data::trace_dataset& full_train,
                                       std::span<const float> teacher_logits,
                                       std::size_t qubit, double duration_ns,
                                       std::uint64_t seed = 7,
                                       bool use_distillation = true);

}  // namespace klinq::core
