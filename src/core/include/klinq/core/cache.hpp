// File-based artifact cache for trained models.
//
// Teachers cost minutes to train; benches for different tables need the same
// teachers. The cache stores serialized models keyed by a content hash of
// the training configuration, so independent bench binaries (run in any
// order) train each artifact exactly once. Set KLINQ_CACHE_DIR to relocate,
// or construct with an empty directory name to disable caching.
#pragma once

#include <optional>
#include <string>

#include "klinq/kd/distiller.hpp"
#include "klinq/kd/teacher.hpp"

namespace klinq::core {

class artifact_cache {
 public:
  /// `directory` empty ⇒ caching disabled (all loads miss, stores ignored).
  explicit artifact_cache(std::string directory);

  /// Cache rooted at $KLINQ_CACHE_DIR (default "./klinq_cache").
  static artifact_cache from_environment();

  bool enabled() const noexcept { return !directory_.empty(); }
  const std::string& directory() const noexcept { return directory_; }

  /// FNV-1a hash of a canonical config string → hex key.
  static std::string hash_key(const std::string& canonical);

  std::optional<kd::teacher_model> load_teacher(const std::string& key) const;
  void store_teacher(const std::string& key, const kd::teacher_model& model);

  std::optional<kd::student_model> load_student(const std::string& key) const;
  void store_student(const std::string& key, const kd::student_model& model);

 private:
  std::string path_for(const std::string& key, const char* kind) const;

  std::string directory_;
};

}  // namespace klinq::core
