// Deployable per-qubit discriminator: float student + Q16.16 hardware model.
//
// measure() runs the fixed-point path — the decision the FPGA would emit —
// which is the unit KLiNQ replicates per qubit to support independent
// (mid-circuit) readout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/hw/fixed_discriminator.hpp"
#include "klinq/kd/distiller.hpp"

namespace klinq::core {

class qubit_discriminator {
 public:
  qubit_discriminator() = default;

  /// Wraps a distilled student and builds its hardware (Q16.16) twin.
  explicit qubit_discriminator(kd::student_model student);

  const kd::student_model& student() const noexcept { return student_; }
  const hw::fixed_discriminator<fx::q16_16>& hardware() const noexcept {
    return hardware_;
  }

  std::size_t parameter_count() const noexcept {
    return student_.parameter_count();
  }

  /// Reusable buffers for repeated measure() calls (mid-circuit readout
  /// loops): zero allocation per shot once warm.
  using measurement_scratch = hw::discriminator_scratch<fx::q16_16>;

  /// Hardware-path measurement of one flattened [I|Q] trace.
  bool measure(std::span<const float> trace,
               std::size_t samples_per_quadrature) const;

  /// Allocation-free per-shot measurement through caller-provided scratch.
  bool measure(std::span<const float> trace,
               std::size_t samples_per_quadrature,
               measurement_scratch& scratch) const;

  /// Batched hardware-path measurement: one decision (1 = state |1⟩) per
  /// dataset row, evaluated through the blocked fixed-point engine.
  void measure_batch(const data::trace_dataset& traces,
                     std::span<std::uint8_t> out) const;

  /// Float-path accuracy on a dataset.
  double float_accuracy(const data::trace_dataset& test) const;
  /// Fixed-point-path accuracy on a dataset.
  double fixed_accuracy(const data::trace_dataset& test) const;
  /// Decision agreement between the two paths.
  double fixed_float_agreement(const data::trace_dataset& test) const;

  void save(std::ostream& out) const;
  static qubit_discriminator load(std::istream& in);

 private:
  kd::student_model student_;
  hw::fixed_discriminator<fx::q16_16> hardware_;
};

}  // namespace klinq::core
