// Paper architecture presets (§III-D): which student serves which qubit.
//
// FNN-A (31-16-8-1, 64 ns averaging)  → qubits 1, 4, 5 (indices 0, 3, 4)
// FNN-B (201-16-8-1, 10 ns averaging) → qubits 2, 3    (indices 1, 2)
#pragma once

#include <cstdint>
#include <string>

#include "klinq/kd/distiller.hpp"

namespace klinq::core {

enum class student_arch { fnn_a, fnn_b };

/// The paper's qubit→architecture assignment (0-indexed qubits).
student_arch arch_for_qubit(std::size_t qubit);

const char* arch_name(student_arch arch);

/// Averaging groups per quadrature for an architecture (15 or 100).
std::size_t groups_for_arch(student_arch arch);

/// Full student training configuration for an architecture.
kd::student_config student_config_for(student_arch arch,
                                      std::uint64_t seed = 7);

/// Expected parameter counts (Fig. 5 arithmetic) for validation.
std::size_t expected_student_params(student_arch arch);   // 657 / 3377
std::size_t expected_teacher_params();                    // 1 627 001

}  // namespace klinq::core
