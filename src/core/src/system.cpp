#include "klinq/core/system.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/core/workflow.hpp"

namespace klinq::core {

klinq_system klinq_system::train(const system_config& config) {
  artifact_cache cache = config.cache_dir == "env"
                             ? artifact_cache::from_environment()
                             : artifact_cache(config.cache_dir);
  klinq_system system;
  const std::size_t n_qubits = config.dataset.device.qubit_count();
  system.discriminators_.reserve(n_qubits);
  for (std::size_t q = 0; q < n_qubits; ++q) {
    log_info("=== qubit ", q + 1, "/", n_qubits, " ===");
    const qsim::qubit_dataset data =
        qsim::build_qubit_dataset(config.dataset, q);
    const kd::teacher_model teacher =
        obtain_teacher(config.dataset, q, data.train, config.teacher, cache);
    const std::vector<float> logits = teacher.logits_for(data.train);
    kd::student_model student = distill_for_duration(
        data.train, logits, q, data.train.duration_ns(), config.student_seed,
        config.use_distillation);
    system.discriminators_.emplace_back(std::move(student));
  }
  return system;
}

const qubit_discriminator& klinq_system::discriminator(
    std::size_t qubit) const {
  KLINQ_REQUIRE(qubit < discriminators_.size(),
                "klinq_system: qubit index out of range");
  return discriminators_[qubit];
}

bool klinq_system::measure(std::size_t qubit, std::span<const float> trace,
                           std::size_t samples_per_quadrature) const {
  return discriminator(qubit).measure(trace, samples_per_quadrature);
}

bool klinq_system::measure(
    std::size_t qubit, std::span<const float> trace,
    std::size_t samples_per_quadrature,
    qubit_discriminator::measurement_scratch& scratch) const {
  return discriminator(qubit).measure(trace, samples_per_quadrature, scratch);
}

std::vector<serve::qubit_engine> klinq_system::serve_engines() const {
  std::vector<serve::qubit_engine> engines;
  engines.reserve(discriminators_.size());
  for (const qubit_discriminator& disc : discriminators_) {
    engines.push_back({&disc.student(), &disc.hardware()});
  }
  return engines;
}

std::unique_ptr<registry::model_registry> klinq_system::make_registry(
    registry::registry_config config) const {
  KLINQ_REQUIRE(qubit_count() > 0, "klinq_system: no discriminators");
  auto registry =
      std::make_unique<registry::model_registry>(qubit_count(), config);
  for (std::size_t q = 0; q < qubit_count(); ++q) {
    registry::calibration_info info;
    info.source = "initial";
    info.created_unix_seconds = registry::unix_now();
    registry->publish(
        q, registry::model_snapshot(discriminators_[q].student(), info));
  }
  return registry;
}

std::vector<std::vector<std::uint8_t>> klinq_system::measure_batch(
    std::span<const data::trace_dataset* const> per_qubit_traces,
    serve::engine_kind engine) const {
  KLINQ_REQUIRE(per_qubit_traces.size() == qubit_count(),
                "klinq_system::measure_batch: one trace block per qubit "
                "required (null to skip a qubit)");
  if (qubit_count() == 0) return {};
  // All submits happen before the first wait, so the backpressure window
  // must admit one open ticket per qubit or the submit loop self-deadlocks.
  serve::readout_server server(serve_engines(),
                               {.max_inflight = qubit_count()});
  std::vector<std::optional<serve::ticket>> tickets(qubit_count());
  for (std::size_t q = 0; q < qubit_count(); ++q) {
    if (per_qubit_traces[q] == nullptr) continue;
    tickets[q] = server.submit({q, per_qubit_traces[q], engine});
  }
  std::vector<std::vector<std::uint8_t>> decisions(qubit_count());
  for (std::size_t q = 0; q < qubit_count(); ++q) {
    if (!tickets[q].has_value()) continue;
    decisions[q] = std::move(server.wait(*tickets[q]).states);
  }
  return decisions;
}

fidelity_report klinq_system::evaluate(const qsim::dataset_spec& spec,
                                       const std::string& label) const {
  KLINQ_REQUIRE(spec.device.qubit_count() == qubit_count(),
                "klinq_system::evaluate: device/system qubit count mismatch");
  fidelity_report report;
  report.label = label;
  for (std::size_t q = 0; q < qubit_count(); ++q) {
    const qsim::qubit_dataset data = qsim::build_qubit_dataset(spec, q);
    report.per_qubit.push_back(discriminators_[q].fixed_accuracy(data.test));
  }
  return report;
}

void klinq_system::save_directory(const std::string& directory) const {
  std::filesystem::create_directories(directory);
  for (std::size_t q = 0; q < discriminators_.size(); ++q) {
    const std::string path =
        directory + "/qubit" + std::to_string(q) + ".klinq";
    std::ofstream out(path, std::ios::binary);
    if (!out) throw io_error("cannot write " + path);
    discriminators_[q].save(out);
  }
}

klinq_system klinq_system::load_directory(const std::string& directory,
                                          std::size_t qubit_count) {
  klinq_system system;
  system.discriminators_.reserve(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    const std::string path =
        directory + "/qubit" + std::to_string(q) + ".klinq";
    std::ifstream in(path, std::ios::binary);
    if (!in) throw io_error("cannot read " + path);
    system.discriminators_.push_back(qubit_discriminator::load(in));
  }
  return system;
}

}  // namespace klinq::core
