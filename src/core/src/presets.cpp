#include "klinq/core/presets.hpp"

#include "klinq/common/error.hpp"

namespace klinq::core {

student_arch arch_for_qubit(std::size_t qubit) {
  KLINQ_REQUIRE(qubit < 5, "arch_for_qubit: paper system has 5 qubits");
  // Qubits 2 and 3 (indices 1, 2) have suboptimal SNR → larger FNN-B.
  return (qubit == 1 || qubit == 2) ? student_arch::fnn_b
                                    : student_arch::fnn_a;
}

const char* arch_name(student_arch arch) {
  return arch == student_arch::fnn_a ? "FNN-A" : "FNN-B";
}

std::size_t groups_for_arch(student_arch arch) {
  return arch == student_arch::fnn_a ? 15 : 100;
}

kd::student_config student_config_for(student_arch arch, std::uint64_t seed) {
  kd::student_config config;
  config.groups_per_quadrature = groups_for_arch(arch);
  config.hidden = {16, 8};
  config.use_matched_filter = true;
  config.normalization = dsp::norm_mode::pow2_shift;
  // alpha weighs hard labels vs teacher soft labels. The paper's regime
  // (480 k shots) supports a strong teacher and a balanced alpha; at
  // laptop-scale shot counts the teacher is noisier, so the calibrated
  // default leans harder on ground truth while keeping the KD term.
  config.distillation = {.alpha = 0.7,
                         .temperature = 2.0,
                         .mode = nn::soften_mode::soft_probability};
  config.epochs = 60;
  config.batch_size = 32;
  config.learning_rate = 2e-3f;
  config.lr_decay = 0.97f;
  config.seed = seed;
  return config;
}

std::size_t expected_student_params(student_arch arch) {
  // in·16+16 + 16·8+8 + 8·1+1 with in = 31 or 201.
  return arch == student_arch::fnn_a ? 657u : 3377u;
}

std::size_t expected_teacher_params() { return 1627001u; }

}  // namespace klinq::core
