#include "klinq/core/workflow.hpp"

#include <sstream>

#include "klinq/common/log.hpp"

namespace klinq::core {

std::string teacher_cache_key(const qsim::dataset_spec& spec,
                              std::size_t qubit,
                              const kd::teacher_config& config) {
  std::ostringstream canonical;
  canonical << "v1|seed=" << spec.seed
            << "|train=" << spec.shots_per_permutation_train
            << "|dur=" << spec.device.trace_duration_ns << "|qubit=" << qubit
            << "|epochs=" << config.epochs << "|batch=" << config.batch_size
            << "|lr=" << config.learning_rate << "|tseed=" << config.seed
            << "|hidden=";
  for (const auto h : config.hidden) canonical << h << ",";
  canonical << "|device=";
  for (const auto& q : spec.device.qubits) {
    canonical << q.ground.i << "," << q.ground.q << "," << q.excited.i << ","
              << q.excited.q << "," << q.tau_ring_ns << "," << q.noise_sigma
              << "," << q.t1_ns << "," << q.prep_error << "," << q.gain_jitter
              << "," << q.phase_jitter << ";";
  }
  canonical << "|xtalk=";
  for (const auto v : spec.device.crosstalk.flat()) canonical << v << ",";
  return artifact_cache::hash_key(canonical.str());
}

kd::teacher_model obtain_teacher(const qsim::dataset_spec& spec,
                                 std::size_t qubit,
                                 const data::trace_dataset& train,
                                 const kd::teacher_config& config,
                                 artifact_cache& cache) {
  const std::string key = teacher_cache_key(spec, qubit, config);
  if (auto cached = cache.load_teacher(key)) {
    return std::move(*cached);
  }
  log_info("training teacher for qubit ", qubit + 1, " (cache key ", key,
           ")");
  kd::teacher_model model = kd::train_teacher(train, config);
  cache.store_teacher(key, model);
  return model;
}

kd::student_model distill_for_duration(const data::trace_dataset& full_train,
                                       std::span<const float> teacher_logits,
                                       std::size_t qubit, double duration_ns,
                                       std::uint64_t seed,
                                       bool use_distillation) {
  const student_arch arch = arch_for_qubit(qubit);
  kd::student_config config = student_config_for(arch, seed);

  const bool full_length =
      duration_ns >= full_train.duration_ns() - 1e-9;
  const data::trace_dataset sliced =
      full_length ? data::trace_dataset{} // unused
                  : full_train.sliced_to_duration_ns(duration_ns);
  const data::trace_dataset& train = full_length ? full_train : sliced;

  const std::span<const float> logits =
      use_distillation ? teacher_logits : std::span<const float>{};
  return kd::distill_student(train, logits, config);
}

}  // namespace klinq::core
