#include "klinq/core/qubit_discriminator.hpp"

namespace klinq::core {

qubit_discriminator::qubit_discriminator(kd::student_model student)
    : student_(std::move(student)), hardware_(student_) {}

bool qubit_discriminator::measure(std::span<const float> trace,
                                  std::size_t samples_per_quadrature) const {
  return hardware_.predict_state(trace, samples_per_quadrature);
}

bool qubit_discriminator::measure(std::span<const float> trace,
                                  std::size_t samples_per_quadrature,
                                  measurement_scratch& scratch) const {
  return hardware_.predict_state(trace, samples_per_quadrature, scratch);
}

void qubit_discriminator::measure_batch(const data::trace_dataset& traces,
                                        std::span<std::uint8_t> out) const {
  hardware_.predict_states(traces, out);
}

double qubit_discriminator::float_accuracy(
    const data::trace_dataset& test) const {
  return student_.accuracy(test);
}

double qubit_discriminator::fixed_accuracy(
    const data::trace_dataset& test) const {
  return hardware_.accuracy(test);
}

double qubit_discriminator::fixed_float_agreement(
    const data::trace_dataset& test) const {
  return hardware_.agreement_with_float(student_, test);
}

void qubit_discriminator::save(std::ostream& out) const {
  student_.save(out);
}

qubit_discriminator qubit_discriminator::load(std::istream& in) {
  return qubit_discriminator(kd::student_model::load(in));
}

}  // namespace klinq::core
