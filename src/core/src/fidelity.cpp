#include "klinq/core/fidelity.hpp"

#include <iomanip>
#include <ostream>

#include "klinq/common/error.hpp"
#include "klinq/common/math.hpp"

namespace klinq::core {

double fidelity_report::geometric_mean_all() const {
  return geometric_mean(per_qubit);
}

double fidelity_report::geometric_mean_excluding(
    std::size_t excluded_qubit) const {
  KLINQ_REQUIRE(excluded_qubit < per_qubit.size(),
                "fidelity_report: excluded qubit out of range");
  std::vector<double> kept;
  kept.reserve(per_qubit.size() - 1);
  for (std::size_t q = 0; q < per_qubit.size(); ++q) {
    if (q != excluded_qubit) kept.push_back(per_qubit[q]);
  }
  return geometric_mean(kept);
}

void print_fidelity_header(std::size_t qubit_count, std::ostream& out) {
  out << std::left << std::setw(18) << "Design";
  for (std::size_t q = 0; q < qubit_count; ++q) {
    out << std::right << std::setw(9) << ("Qubit " + std::to_string(q + 1));
  }
  out << std::right << std::setw(9) << "F5Q" << std::setw(9) << "F4Q" << "\n";
}

void print_fidelity_row(const fidelity_report& report, std::ostream& out) {
  out << std::left << std::setw(18) << report.label << std::right
      << std::fixed << std::setprecision(3);
  for (const double f : report.per_qubit) {
    out << std::setw(9) << f;
  }
  out << std::setw(9) << report.geometric_mean_all();
  if (report.per_qubit.size() > 1) {
    out << std::setw(9) << report.geometric_mean_excluding(1);
  }
  out << "\n";
}

}  // namespace klinq::core
