#include "klinq/core/cache.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "klinq/common/env.hpp"
#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"

namespace klinq::core {

artifact_cache::artifact_cache(std::string directory)
    : directory_(std::move(directory)) {
  if (!directory_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
      log_warn("artifact cache disabled: cannot create ", directory_, ": ",
               ec.message());
      directory_.clear();
    }
  }
}

artifact_cache artifact_cache::from_environment() {
  return artifact_cache(env_string("KLINQ_CACHE_DIR", "./klinq_cache"));
}

std::string artifact_cache::hash_key(const std::string& canonical) {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const unsigned char c : canonical) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  std::ostringstream out;
  out << std::hex << hash;
  return out.str();
}

std::string artifact_cache::path_for(const std::string& key,
                                     const char* kind) const {
  return directory_ + "/" + kind + "_" + key + ".bin";
}

std::optional<kd::teacher_model> artifact_cache::load_teacher(
    const std::string& key) const {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key, "teacher");
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    auto model = kd::teacher_model::load(in);
    log_info("cache hit: teacher ", key);
    return model;
  } catch (const error& e) {
    log_warn("cache entry corrupt, retraining: ", path, " (", e.what(), ")");
    return std::nullopt;
  }
}

void artifact_cache::store_teacher(const std::string& key,
                                   const kd::teacher_model& model) {
  if (!enabled()) return;
  const std::string path = path_for(key, "teacher");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    log_warn("cannot write cache entry ", path);
    return;
  }
  model.save(out);
}

std::optional<kd::student_model> artifact_cache::load_student(
    const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key, "student"), std::ios::binary);
  if (!in) return std::nullopt;
  try {
    auto model = kd::student_model::load(in);
    log_info("cache hit: student ", key);
    return model;
  } catch (const error&) {
    return std::nullopt;
  }
}

void artifact_cache::store_student(const std::string& key,
                                   const kd::student_model& model) {
  if (!enabled()) return;
  std::ofstream out(path_for(key, "student"), std::ios::binary);
  if (!out) {
    log_warn("cannot write student cache entry for ", key);
    return;
  }
  model.save(out);
}

}  // namespace klinq::core
