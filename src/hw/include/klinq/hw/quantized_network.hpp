// Fixed-point FNN inference engine (paper §IV).
//
// Bit-accurate software model of the FPGA datapath:
//   * weights/biases quantized from the trained float network,
//   * per-neuron MAC: full-precision products rounded back to F fractional
//     bits (the DSP post-scaler), summed in a wide accumulator with a single
//     saturation at the adder-tree root,
//   * ReLU realized as the RTL does it — inspect the sign bit, zero or pass,
//   * overflow managed by saturation in the activation stage.
//
// Templated on the fixed format so the word-width ablation (Q8.8 / Q12.12 /
// Q16.16 / Q24.24) reuses one implementation.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/fixed/fixed.hpp"
#include "klinq/linalg/matrix.hpp"
#include "klinq/nn/network.hpp"

namespace klinq::hw {

/// Reusable ping-pong activation buffers for the fixed-point forward pass.
/// Explicit (caller-owned) rather than thread_local: const networks stay
/// safely shareable, reentrancy is by construction, and steady-state batched
/// evaluation performs zero heap allocations.
template <class Fixed>
struct quantized_scratch {
  std::vector<Fixed> a;
  std::vector<Fixed> b;
};

template <class Fixed>
class quantized_network {
 public:
  quantized_network() = default;

  /// Quantizes every parameter of a trained float network.
  explicit quantized_network(const nn::network& net) {
    input_dim_ = net.input_dim();
    layers_.reserve(net.layer_count());
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      const nn::dense_layer& src = net.layer(l);
      layer quantized;
      quantized.in_dim = src.in_dim();
      quantized.out_dim = src.out_dim();
      quantized.act = src.act();
      quantized.weights.reserve(src.weights().size());
      for (const float w : src.weights().flat()) {
        quantized.weights.push_back(Fixed::from_double(w));
      }
      quantized.bias.reserve(src.bias().size());
      for (const float b : src.bias()) {
        quantized.bias.push_back(Fixed::from_double(b));
      }
      layers_.push_back(std::move(quantized));
    }
  }

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Input widths per layer, e.g. {31, 16, 8} for FNN-A — drives the
  /// adder-tree terms of the cycle and resource models.
  std::vector<std::size_t> layer_input_widths() const {
    std::vector<std::size_t> widths;
    widths.reserve(layers_.size());
    for (const auto& l : layers_) widths.push_back(l.in_dim);
    return widths;
  }

  std::size_t parameter_count() const noexcept {
    std::size_t total = 0;
    for (const auto& l : layers_) total += l.weights.size() + l.bias.size();
    return total;
  }

  /// Raw quantized tensors (row-major out×in), e.g. for RTL export.
  const std::vector<Fixed>& layer_weights(std::size_t index) const {
    KLINQ_REQUIRE(index < layers_.size(), "layer_weights: index out of range");
    return layers_[index].weights;
  }
  const std::vector<Fixed>& layer_bias(std::size_t index) const {
    KLINQ_REQUIRE(index < layers_.size(), "layer_bias: index out of range");
    return layers_[index].bias;
  }

  /// Shots per cache block of the batched forward: the input tile
  /// (kBatchTile × 201 registers for FNN-B) stays L1/L2-resident while each
  /// weight row is streamed across it once.
  static constexpr std::size_t kBatchTile = 64;

  /// Full fixed-point forward pass through caller-provided scratch; returns
  /// the output logit register.
  Fixed forward_logit(std::span<const Fixed> input,
                      quantized_scratch<Fixed>& scratch) const {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    KLINQ_REQUIRE(input.size() == input_dim_,
                  "quantized_network: bad input width");
    scratch.a.assign(input.begin(), input.end());
    std::vector<Fixed>* current = &scratch.a;
    std::vector<Fixed>* next = &scratch.b;
    for (const layer& l : layers_) {
      next->assign(l.out_dim, Fixed::zero());
      for (std::size_t neuron = 0; neuron < l.out_dim; ++neuron) {
        (*next)[neuron] = neuron_mac(l, neuron, current->data());
      }
      std::swap(current, next);
    }
    return current->front();
  }

  /// Convenience single-shot overload (allocates its own scratch).
  Fixed forward_logit(std::span<const Fixed> input) const {
    quantized_scratch<Fixed> scratch;
    return forward_logit(input, scratch);
  }

  /// Batched forward: `inputs` is (shots × input_dim); writes one output
  /// logit register per row. Shots are processed in cache-blocked tiles of
  /// kBatchTile so each weight row loads once per tile; results are
  /// bit-identical to forward_logit on every row. Steady-state evaluation
  /// through a reused scratch performs zero heap allocations.
  void forward_logits(const la::matrix<Fixed>& inputs, std::span<Fixed> out,
                      quantized_scratch<Fixed>& scratch) const {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    KLINQ_REQUIRE(inputs.cols() == input_dim_,
                  "quantized_network: bad input width");
    KLINQ_REQUIRE(out.size() == inputs.rows(),
                  "quantized_network: one output register per shot required");
    std::size_t max_width = input_dim_;
    for (const layer& l : layers_) max_width = std::max(max_width, l.out_dim);
    scratch.a.resize(kBatchTile * max_width);
    scratch.b.resize(kBatchTile * max_width);

    for (std::size_t tile_begin = 0; tile_begin < inputs.rows();
         tile_begin += kBatchTile) {
      const std::size_t tile =
          std::min(kBatchTile, inputs.rows() - tile_begin);
      Fixed* current = scratch.a.data();
      Fixed* next = scratch.b.data();
      for (std::size_t s = 0; s < tile; ++s) {
        const auto row = inputs.row(tile_begin + s);
        std::copy(row.begin(), row.end(), current + s * input_dim_);
      }
      std::size_t width = input_dim_;
      for (const layer& l : layers_) {
        // Neuron-outer / shot-inner: one weight-row load per tile, with the
        // per-shot MAC order identical to the single-shot path.
        for (std::size_t neuron = 0; neuron < l.out_dim; ++neuron) {
          for (std::size_t s = 0; s < tile; ++s) {
            next[s * l.out_dim + neuron] =
                neuron_mac(l, neuron, current + s * width);
          }
        }
        std::swap(current, next);
        width = l.out_dim;
      }
      for (std::size_t s = 0; s < tile; ++s) {
        out[tile_begin + s] = current[s * width];
      }
    }
  }

  /// Hard decision: output register sign bit clear ⇒ state 1 ≡ logit >= 0.
  bool predict_state(std::span<const Fixed> input) const {
    return !forward_logit(input).sign_bit();
  }

 private:
  struct layer {
    std::size_t in_dim = 0;
    std::size_t out_dim = 0;
    nn::activation act = nn::activation::identity;
    std::vector<Fixed> weights;  // (out × in) row-major
    std::vector<Fixed> bias;
  };

  /// One neuron's datapath: MAC with wide accumulator — products rounded to
  /// F fractional bits (the DSP post-scaler), summed without intermediate
  /// clamping, saturated once at the adder-tree root — then the RTL's
  /// sign-bit ReLU.
  static Fixed neuron_mac(const layer& l, std::size_t neuron,
                          const Fixed* input) {
    fx::fixed_accumulator<Fixed> acc;
    const Fixed* weight_row = l.weights.data() + neuron * l.in_dim;
    for (std::size_t i = 0; i < l.in_dim; ++i) {
      acc.add(weight_row[i] * input[i]);
    }
    acc.add(l.bias[neuron]);
    Fixed value = acc.result();
    if (l.act == nn::activation::relu && value.sign_bit()) {
      value = Fixed::zero();
    }
    return value;
  }

  std::size_t input_dim_ = 0;
  std::vector<layer> layers_;
};

}  // namespace klinq::hw
