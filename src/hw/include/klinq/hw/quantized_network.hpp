// Fixed-point FNN inference engine (paper §IV).
//
// Bit-accurate software model of the FPGA datapath:
//   * weights/biases quantized from the trained float network,
//   * per-neuron MAC: full-precision products rounded back to F fractional
//     bits (the DSP post-scaler), summed in a wide accumulator with a single
//     saturation at the adder-tree root,
//   * ReLU realized as the RTL does it — inspect the sign bit, zero or pass,
//   * overflow managed by saturation in the activation stage.
//
// Templated on the fixed format so the word-width ablation (Q8.8 / Q12.12 /
// Q16.16 / Q24.24) reuses one implementation. Formats whose registers fit
// 32 bits (every ablation format except Q24.24) additionally keep each
// layer's parameters as cache-aligned raw int32 planes and run the MAC
// loops through the vectorized kernels in klinq/fixed/fixed_kernels.hpp
// (branchless int64 scalar or AVX2, runtime-dispatched) — bit-identical to
// the fixed<I,F> reference path by construction (tests/test_fixed_kernels.cpp
// proves it adversarially). Q24.24 stays on the int128 reference path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "klinq/common/aligned.hpp"
#include "klinq/common/error.hpp"
#include "klinq/fixed/fixed.hpp"
#include "klinq/fixed/fixed_kernels.hpp"
#include "klinq/linalg/matrix.hpp"
#include "klinq/nn/network.hpp"

namespace klinq::hw {

/// Reusable buffers for the fixed-point forward pass. Explicit
/// (caller-owned) rather than thread_local: const networks stay safely
/// shareable, reentrancy is by construction, and steady-state batched
/// evaluation performs zero heap allocations. `a`/`b` are the reference
/// path's ping-pong activations; the `_raw` planes back the kernel fast
/// path (feature-major int32 tiles).
template <class Fixed>
struct quantized_scratch {
  std::vector<Fixed> a;
  std::vector<Fixed> b;
  aligned_vector<std::int32_t> a_raw;
  aligned_vector<std::int32_t> b_raw;
  aligned_vector<std::int32_t> in_raw;
};

template <class Fixed>
class quantized_network {
 public:
  /// True when this format runs the vectorized raw-register kernels.
  static constexpr bool kernel_fast_path =
      fx::kernels::has_int64_fast_path<Fixed>;

  quantized_network() = default;

  /// Quantizes every parameter of a trained float network.
  explicit quantized_network(const nn::network& net) {
    input_dim_ = net.input_dim();
    layers_.reserve(net.layer_count());
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      const nn::dense_layer& src = net.layer(l);
      layer quantized;
      quantized.in_dim = src.in_dim();
      quantized.out_dim = src.out_dim();
      quantized.act = src.act();
      quantized.weights.reserve(src.weights().size());
      for (const float w : src.weights().flat()) {
        quantized.weights.push_back(Fixed::from_double(w));
      }
      quantized.bias.reserve(src.bias().size());
      for (const float b : src.bias()) {
        quantized.bias.push_back(Fixed::from_double(b));
      }
      if constexpr (kernel_fast_path) {
        // Raw SoA planes for the kernels: registers fit int32 exactly
        // (rails included) whenever the fast path is enabled.
        quantized.weights_raw.reserve(quantized.weights.size());
        for (const Fixed w : quantized.weights) {
          quantized.weights_raw.push_back(
              static_cast<std::int32_t>(w.raw()));
        }
        quantized.bias_raw.reserve(quantized.bias.size());
        for (const Fixed b : quantized.bias) {
          quantized.bias_raw.push_back(static_cast<std::int32_t>(b.raw()));
        }
      }
      layers_.push_back(std::move(quantized));
    }
  }

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Input widths per layer, e.g. {31, 16, 8} for FNN-A — drives the
  /// adder-tree terms of the cycle and resource models.
  std::vector<std::size_t> layer_input_widths() const {
    std::vector<std::size_t> widths;
    widths.reserve(layers_.size());
    for (const auto& l : layers_) widths.push_back(l.in_dim);
    return widths;
  }

  std::size_t parameter_count() const noexcept {
    std::size_t total = 0;
    for (const auto& l : layers_) total += l.weights.size() + l.bias.size();
    return total;
  }

  /// FNV-1a over the quantized parameter registers (raw bit patterns in
  /// layer order, dims and activations mixed in) — a cheap integrity
  /// fingerprint. Registry snapshots stamp it at save time and re-verify it
  /// after requantizing the loaded student, so a file whose quantization no
  /// longer reproduces the recorded registers is rejected instead of
  /// silently serving different decisions.
  std::uint64_t parameter_hash() const noexcept {
    std::uint64_t hash = 14695981039346656037ull;
    const auto mix = [&hash](std::uint64_t value) noexcept {
      for (int b = 0; b < 64; b += 8) {
        hash = (hash ^ ((value >> b) & 0xff)) * 1099511628211ull;
      }
    };
    mix(input_dim_);
    for (const auto& l : layers_) {
      mix(l.out_dim);
      mix(static_cast<std::uint64_t>(l.act));
      for (const Fixed w : l.weights) {
        mix(static_cast<std::uint64_t>(w.raw()));
      }
      for (const Fixed b : l.bias) {
        mix(static_cast<std::uint64_t>(b.raw()));
      }
    }
    return hash;
  }

  /// Raw quantized tensors (row-major out×in), e.g. for RTL export.
  const std::vector<Fixed>& layer_weights(std::size_t index) const {
    KLINQ_REQUIRE(index < layers_.size(), "layer_weights: index out of range");
    return layers_[index].weights;
  }
  const std::vector<Fixed>& layer_bias(std::size_t index) const {
    KLINQ_REQUIRE(index < layers_.size(), "layer_bias: index out of range");
    return layers_[index].bias;
  }

  /// Shots per cache block of the batched forward: the input tile
  /// (kBatchTile × 201 registers for FNN-B) stays L1/L2-resident while each
  /// weight row is streamed across it once. Matches the kernel layer's lane
  /// cap so tiles vectorize whole.
  static constexpr std::size_t kBatchTile = fx::kernels::max_tile_lanes;

  /// Full fixed-point forward pass through caller-provided scratch; returns
  /// the output logit register.
  Fixed forward_logit(std::span<const Fixed> input,
                      quantized_scratch<Fixed>& scratch) const {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    KLINQ_REQUIRE(input.size() == input_dim_,
                  "quantized_network: bad input width");
    if constexpr (kernel_fast_path) {
      scratch.in_raw.resize(input_dim_);
      for (std::size_t i = 0; i < input_dim_; ++i) {
        scratch.in_raw[i] = static_cast<std::int32_t>(input[i].raw());
      }
      return Fixed::from_raw(forward_logit_raw(scratch.in_raw.data(),
                                               scratch));
    } else {
      scratch.a.assign(input.begin(), input.end());
      std::vector<Fixed>* current = &scratch.a;
      std::vector<Fixed>* next = &scratch.b;
      for (const layer& l : layers_) {
        next->assign(l.out_dim, Fixed::zero());
        for (std::size_t neuron = 0; neuron < l.out_dim; ++neuron) {
          (*next)[neuron] = neuron_mac(l, neuron, current->data());
        }
        std::swap(current, next);
      }
      return current->front();
    }
  }

  /// Convenience single-shot overload (allocates its own scratch).
  Fixed forward_logit(std::span<const Fixed> input) const {
    quantized_scratch<Fixed> scratch;
    return forward_logit(input, scratch);
  }

  /// Fast-path single-shot forward over a contiguous raw register row: one
  /// mac_row per neuron (the dispatched row kernel vectorizes along the
  /// inputs, where a one-lane tile could not). Bit-identical to
  /// forward_logit; returns the raw output logit.
  std::int32_t forward_logit_raw(const std::int32_t* input,
                                 quantized_scratch<Fixed>& scratch) const
    requires(kernel_fast_path)
  {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    const std::size_t width = max_width();
    scratch.a_raw.resize(width);
    scratch.b_raw.resize(width);
    const std::int32_t* current = input;
    std::int32_t* planes[2] = {scratch.a_raw.data(), scratch.b_raw.data()};
    int which = 0;
    for (const layer& l : layers_) {
      std::int32_t* next = planes[which];
      const bool relu = l.act == nn::activation::relu;
      for (std::size_t neuron = 0; neuron < l.out_dim; ++neuron) {
        std::int64_t value = fx::kernels::mac_row(
            l.weights_raw.data() + neuron * l.in_dim, current, l.in_dim,
            l.bias_raw[neuron], kSpec);
        if (relu && value < 0) value = 0;
        next[neuron] = static_cast<std::int32_t>(value);
      }
      current = next;
      which ^= 1;
    }
    return current[0];
  }

  /// Fast-path batched forward over a feature-major raw-register plane:
  /// `in_plane` holds input_dim rows of kBatchTile int32 lanes (shot s of
  /// feature i at in_plane[i * kBatchTile + s]); writes one raw output logit
  /// per shot to out_raw[0..tile). Bit-identical to forward_logit per lane.
  void forward_logits_plane(const std::int32_t* in_plane, std::size_t tile,
                            std::int32_t* out_raw,
                            quantized_scratch<Fixed>& scratch) const
    requires(kernel_fast_path)
  {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    KLINQ_REQUIRE(tile <= kBatchTile,
                  "quantized_network: tile exceeds kBatchTile lanes");
    const std::size_t width = max_width();
    scratch.a_raw.resize(kBatchTile * width);
    scratch.b_raw.resize(kBatchTile * width);
    // First layer reads the caller's plane while writing a_raw, then the
    // planes ping-pong — the input is never overwritten mid-layer.
    const std::int32_t* current = in_plane;
    std::int32_t* planes[2] = {scratch.a_raw.data(), scratch.b_raw.data()};
    int which = 0;
    for (const layer& l : layers_) {
      std::int32_t* next = planes[which];
      fx::kernels::mac_tile(l.weights_raw.data(), l.bias_raw.data(),
                            l.out_dim, l.in_dim, current, tile, kBatchTile,
                            l.act == nn::activation::relu, next, kSpec);
      current = next;
      which ^= 1;
    }
    // The logit is row 0 of the final plane.
    std::copy(current, current + tile, out_raw);
  }

  /// Batched forward: `inputs` is (shots × input_dim); writes one output
  /// logit register per row. Shots are processed in cache-blocked tiles of
  /// kBatchTile so each weight row loads once per tile; results are
  /// bit-identical to forward_logit on every row. Steady-state evaluation
  /// through a reused scratch performs zero heap allocations.
  void forward_logits(const la::matrix<Fixed>& inputs, std::span<Fixed> out,
                      quantized_scratch<Fixed>& scratch) const {
    KLINQ_REQUIRE(!layers_.empty(), "quantized_network: empty network");
    KLINQ_REQUIRE(inputs.cols() == input_dim_,
                  "quantized_network: bad input width");
    KLINQ_REQUIRE(out.size() == inputs.rows(),
                  "quantized_network: one output register per shot required");
    if constexpr (kernel_fast_path) {
      scratch.in_raw.resize(kBatchTile * input_dim_);
      aligned_vector<std::int32_t>& plane = scratch.in_raw;
      std::int32_t logits_raw[kBatchTile];
      for (std::size_t tile_begin = 0; tile_begin < inputs.rows();
           tile_begin += kBatchTile) {
        const std::size_t tile =
            std::min(kBatchTile, inputs.rows() - tile_begin);
        // Transpose the shot-major tile into the feature-major plane.
        for (std::size_t s = 0; s < tile; ++s) {
          const auto row = inputs.row(tile_begin + s);
          for (std::size_t i = 0; i < input_dim_; ++i) {
            plane[i * kBatchTile + s] =
                static_cast<std::int32_t>(row[i].raw());
          }
        }
        forward_logits_plane(plane.data(), tile, logits_raw, scratch);
        for (std::size_t s = 0; s < tile; ++s) {
          out[tile_begin + s] = Fixed::from_raw(logits_raw[s]);
        }
      }
    } else {
      std::size_t width_cap = max_width();
      scratch.a.resize(kBatchTile * width_cap);
      scratch.b.resize(kBatchTile * width_cap);

      for (std::size_t tile_begin = 0; tile_begin < inputs.rows();
           tile_begin += kBatchTile) {
        const std::size_t tile =
            std::min(kBatchTile, inputs.rows() - tile_begin);
        Fixed* current = scratch.a.data();
        Fixed* next = scratch.b.data();
        for (std::size_t s = 0; s < tile; ++s) {
          const auto row = inputs.row(tile_begin + s);
          std::copy(row.begin(), row.end(), current + s * input_dim_);
        }
        std::size_t width = input_dim_;
        for (const layer& l : layers_) {
          // Neuron-outer / shot-inner: one weight-row load per tile, with the
          // per-shot MAC order identical to the single-shot path.
          for (std::size_t neuron = 0; neuron < l.out_dim; ++neuron) {
            for (std::size_t s = 0; s < tile; ++s) {
              next[s * l.out_dim + neuron] =
                  neuron_mac(l, neuron, current + s * width);
            }
          }
          std::swap(current, next);
          width = l.out_dim;
        }
        for (std::size_t s = 0; s < tile; ++s) {
          out[tile_begin + s] = current[s * width];
        }
      }
    }
  }

  /// Hard decision: output register sign bit clear ⇒ state 1 ≡ logit >= 0.
  bool predict_state(std::span<const Fixed> input) const {
    return !forward_logit(input).sign_bit();
  }

 private:
  struct layer {
    std::size_t in_dim = 0;
    std::size_t out_dim = 0;
    nn::activation act = nn::activation::identity;
    std::vector<Fixed> weights;  // (out × in) row-major
    std::vector<Fixed> bias;
    // Fast-path twins of weights/bias as cache-aligned raw int32 planes.
    aligned_vector<std::int32_t> weights_raw;
    aligned_vector<std::int32_t> bias_raw;
  };

  static constexpr fx::kernels::mac_spec kSpec =
      fx::kernels::spec_or_default<Fixed>();

  std::size_t max_width() const noexcept {
    std::size_t width = input_dim_;
    for (const layer& l : layers_) width = std::max(width, l.out_dim);
    return width;
  }

  /// One neuron's datapath on the int128 reference path: MAC with wide
  /// accumulator — products rounded to F fractional bits (the DSP
  /// post-scaler), summed without intermediate clamping, saturated once at
  /// the adder-tree root — then the RTL's sign-bit ReLU.
  static Fixed neuron_mac(const layer& l, std::size_t neuron,
                          const Fixed* input) {
    fx::fixed_accumulator<Fixed> acc;
    const Fixed* weight_row = l.weights.data() + neuron * l.in_dim;
    for (std::size_t i = 0; i < l.in_dim; ++i) {
      acc.add(weight_row[i] * input[i]);
    }
    acc.add(l.bias[neuron]);
    Fixed value = acc.result();
    if (l.act == nn::activation::relu && value.sign_bit()) {
      value = Fixed::zero();
    }
    return value;
  }

  std::size_t input_dim_ = 0;
  std::vector<layer> layers_;
};

}  // namespace klinq::hw
