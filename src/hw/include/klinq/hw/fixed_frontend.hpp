// Fixed-point data pre-processing front-end (paper §IV, Fig. 3).
//
// Mirrors the PL pipeline ahead of the fully connected layers:
//   AVG   — per-group adder tree, then multiply by a precomputed reciprocal
//           (a configuration constant; the datapath never divides),
//   NORM  — subtract the calibrated x_min, arithmetic-shift by the
//           power-of-two σ exponent (the paper's division-free normalizer),
//   MF    — wide MAC of the quantized envelope against the raw trace,
//           normalized through its own (x_min, shift) pair,
//   CONCAT — [avg I | avg Q | MF] forms the student network input.
//
// Constructed from a fitted float feature_pipeline; all calibration
// constants are quantized once at build time, exactly like writing the
// FPGA's parameter BRAM.
#pragma once

#include <span>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/dsp/feature_pipeline.hpp"
#include "klinq/fixed/fixed.hpp"

namespace klinq::hw {

template <class Fixed>
class fixed_frontend {
 public:
  fixed_frontend() = default;

  explicit fixed_frontend(const dsp::feature_pipeline& pipeline) {
    KLINQ_REQUIRE(pipeline.is_fitted(), "fixed_frontend: unfitted pipeline");
    KLINQ_REQUIRE(
        pipeline.normalizer().mode() == dsp::norm_mode::pow2_shift,
        "fixed_frontend: hardware requires power-of-two normalization");
    groups_ = pipeline.averager().groups_per_quadrature();
    use_mf_ = pipeline.config().use_matched_filter;
    if (use_mf_) {
      for (const float w : pipeline.filter().envelope()) {
        mf_envelope_.push_back(Fixed::from_double(w));
      }
    }
    const auto& norm = pipeline.normalizer();
    for (std::size_t c = 0; c < norm.feature_width(); ++c) {
      x_min_.push_back(Fixed::from_double(norm.x_min()[c]));
    }
    shift_.assign(norm.shift_exponents().begin(),
                  norm.shift_exponents().end());
  }

  std::size_t output_width() const noexcept {
    return 2 * groups_ + (use_mf_ ? 1 : 0);
  }
  std::size_t groups_per_quadrature() const noexcept { return groups_; }
  bool uses_matched_filter() const noexcept { return use_mf_; }

  /// Quantizes a float ADC trace into a caller-provided register file
  /// (allocation-free hot path for batched evaluation).
  static void quantize_trace(std::span<const float> trace,
                             std::span<Fixed> out) {
    KLINQ_REQUIRE(out.size() == trace.size(),
                  "fixed_frontend: quantize output width != trace width");
    for (std::size_t i = 0; i < trace.size(); ++i) {
      out[i] = Fixed::from_double(trace[i]);
    }
  }

  /// Quantizes a float ADC trace into the fixed input register file.
  static std::vector<Fixed> quantize_trace(std::span<const float> trace) {
    std::vector<Fixed> out(trace.size());
    quantize_trace(trace, out);
    return out;
  }

  /// Runs AVG → NORM ∥ MF → CONCAT on a quantized trace of N complex
  /// samples. `out` must have output_width() entries.
  void extract(std::span<const Fixed> trace,
               std::size_t samples_per_quadrature,
               std::span<Fixed> out) const {
    const std::size_t n = samples_per_quadrature;
    KLINQ_REQUIRE(trace.size() == 2 * n, "fixed_frontend: trace width != 2N");
    KLINQ_REQUIRE(out.size() == output_width(),
                  "fixed_frontend: bad output span");
    KLINQ_REQUIRE(n >= groups_, "fixed_frontend: fewer samples than groups");
    KLINQ_REQUIRE(!use_mf_ || mf_envelope_.size() == 2 * n,
                  "fixed_frontend: envelope width does not match this trace "
                  "duration (rebuild the front-end for the new duration)");

    // AVG: adder tree per group, multiply by reciprocal group length.
    for (std::size_t quadrature = 0; quadrature < 2; ++quadrature) {
      for (std::size_t g = 0; g < groups_; ++g) {
        const std::size_t begin = g * n / groups_;
        const std::size_t end = (g + 1) * n / groups_;
        fx::fixed_accumulator<Fixed> acc;
        for (std::size_t s = begin; s < end; ++s) {
          acc.add(trace[quadrature * n + s]);
        }
        // Reciprocal is a configuration constant (per group length), not a
        // runtime division.
        const Fixed reciprocal =
            Fixed::from_double(1.0 / static_cast<double>(end - begin));
        out[quadrature * groups_ + g] = acc.result() * reciprocal;
      }
    }

    // MF: wide MAC over the raw quantized trace.
    if (use_mf_) {
      fx::fixed_accumulator<Fixed> acc;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        acc.add(mf_envelope_[i] * trace[i]);
      }
      out[out.size() - 1] = acc.result();
    }

    // NORM: (x − x_min) >> k for every concatenated feature.
    for (std::size_t c = 0; c < out.size(); ++c) {
      out[c] = (out[c] - x_min_[c]).shifted_right(shift_[c]);
    }
  }

 private:
  std::size_t groups_ = 0;
  bool use_mf_ = false;
  std::vector<Fixed> mf_envelope_;
  std::vector<Fixed> x_min_;
  std::vector<int> shift_;
};

}  // namespace klinq::hw
