// Fixed-point data pre-processing front-end (paper §IV, Fig. 3).
//
// Mirrors the PL pipeline ahead of the fully connected layers:
//   AVG   — per-group adder tree, then multiply by a precomputed reciprocal
//           (a configuration constant; the datapath never divides),
//   NORM  — subtract the calibrated x_min, arithmetic-shift by the
//           power-of-two σ exponent (the paper's division-free normalizer),
//   MF    — wide MAC of the quantized envelope against the raw trace,
//           normalized through its own (x_min, shift) pair,
//   CONCAT — [avg I | avg Q | MF] forms the student network input.
//
// Constructed from a fitted float feature_pipeline; all calibration
// constants are quantized once at build time, exactly like writing the
// FPGA's parameter BRAM.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "klinq/common/aligned.hpp"
#include "klinq/common/error.hpp"
#include "klinq/dsp/feature_pipeline.hpp"
#include "klinq/fixed/fixed.hpp"
#include "klinq/fixed/fixed_kernels.hpp"

namespace klinq::hw {

template <class Fixed>
class fixed_frontend {
 public:
  /// True when this format runs the vectorized raw-register kernels (see
  /// fixed_kernels.hpp); Q24.24 stays on the fixed<I,F> reference path.
  static constexpr bool kernel_fast_path =
      fx::kernels::has_int64_fast_path<Fixed>;

  fixed_frontend() = default;

  explicit fixed_frontend(const dsp::feature_pipeline& pipeline) {
    KLINQ_REQUIRE(pipeline.is_fitted(), "fixed_frontend: unfitted pipeline");
    KLINQ_REQUIRE(
        pipeline.normalizer().mode() == dsp::norm_mode::pow2_shift,
        "fixed_frontend: hardware requires power-of-two normalization");
    groups_ = pipeline.averager().groups_per_quadrature();
    use_mf_ = pipeline.config().use_matched_filter;
    if (use_mf_) {
      for (const float w : pipeline.filter().envelope()) {
        mf_envelope_.push_back(Fixed::from_double(w));
      }
      if constexpr (kernel_fast_path) {
        mf_envelope_raw_.reserve(mf_envelope_.size());
        for (const Fixed w : mf_envelope_) {
          mf_envelope_raw_.push_back(static_cast<std::int32_t>(w.raw()));
        }
      }
    }
    const auto& norm = pipeline.normalizer();
    for (std::size_t c = 0; c < norm.feature_width(); ++c) {
      x_min_.push_back(Fixed::from_double(norm.x_min()[c]));
    }
    shift_.assign(norm.shift_exponents().begin(),
                  norm.shift_exponents().end());
  }

  std::size_t output_width() const noexcept {
    return 2 * groups_ + (use_mf_ ? 1 : 0);
  }
  std::size_t groups_per_quadrature() const noexcept { return groups_; }
  bool uses_matched_filter() const noexcept { return use_mf_; }

  /// Quantizes a float ADC trace into a caller-provided register file
  /// (allocation-free hot path for batched evaluation).
  static void quantize_trace(std::span<const float> trace,
                             std::span<Fixed> out) {
    KLINQ_REQUIRE(out.size() == trace.size(),
                  "fixed_frontend: quantize output width != trace width");
    for (std::size_t i = 0; i < trace.size(); ++i) {
      out[i] = Fixed::from_double(trace[i]);
    }
  }

  /// Quantizes a float ADC trace into the fixed input register file.
  static std::vector<Fixed> quantize_trace(std::span<const float> trace) {
    std::vector<Fixed> out(trace.size());
    quantize_trace(trace, out);
    return out;
  }

  /// Fast path: quantizes a float ADC trace into raw int32 registers through
  /// the dispatched quantize_block kernel — bit-identical to quantize_trace
  /// (Fixed::from_double) per sample.
  static void quantize_trace_raw(std::span<const float> trace,
                                 std::span<std::int32_t> out)
    requires(kernel_fast_path)
  {
    KLINQ_REQUIRE(out.size() == trace.size(),
                  "fixed_frontend: quantize output width != trace width");
    fx::kernels::quantize_block(trace.data(), trace.size(), out.data(),
                                kSpec);
  }

  /// Runs AVG → NORM ∥ MF → CONCAT on a quantized trace of N complex
  /// samples. `out` must have output_width() entries.
  void extract(std::span<const Fixed> trace,
               std::size_t samples_per_quadrature,
               std::span<Fixed> out) const {
    const std::size_t n = samples_per_quadrature;
    KLINQ_REQUIRE(trace.size() == 2 * n, "fixed_frontend: trace width != 2N");
    KLINQ_REQUIRE(out.size() == output_width(),
                  "fixed_frontend: bad output span");
    KLINQ_REQUIRE(n >= groups_, "fixed_frontend: fewer samples than groups");
    KLINQ_REQUIRE(!use_mf_ || mf_envelope_.size() == 2 * n,
                  "fixed_frontend: envelope width does not match this trace "
                  "duration (rebuild the front-end for the new duration)");

    // AVG: adder tree per group, multiply by reciprocal group length.
    for (std::size_t quadrature = 0; quadrature < 2; ++quadrature) {
      for (std::size_t g = 0; g < groups_; ++g) {
        const std::size_t begin = g * n / groups_;
        const std::size_t end = (g + 1) * n / groups_;
        fx::fixed_accumulator<Fixed> acc;
        for (std::size_t s = begin; s < end; ++s) {
          acc.add(trace[quadrature * n + s]);
        }
        // Reciprocal is a configuration constant (per group length), not a
        // runtime division.
        const Fixed reciprocal =
            Fixed::from_double(1.0 / static_cast<double>(end - begin));
        out[quadrature * groups_ + g] = acc.result() * reciprocal;
      }
    }

    // MF: wide MAC over the raw quantized trace.
    if (use_mf_) {
      fx::fixed_accumulator<Fixed> acc;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        acc.add(mf_envelope_[i] * trace[i]);
      }
      out[out.size() - 1] = acc.result();
    }

    // NORM: (x − x_min) >> k for every concatenated feature.
    for (std::size_t c = 0; c < out.size(); ++c) {
      out[c] = (out[c] - x_min_[c]).shifted_right(shift_[c]);
    }
  }

  /// Fast-path extract over a raw register plane — bit-identical to
  /// extract() per feature. Writes feature c to out[c * out_stride]; a
  /// stride of quantized_network::kBatchTile lays consecutive shots out
  /// feature-major, directly consumable by forward_logits_plane. The big
  /// loops (AVG adder trees, the 2N-wide MF MAC) run on int32/int64 raws
  /// with the kernel post-scaler; the handful of per-feature NORM ops reuse
  /// the fixed<I,F> reference arithmetic.
  void extract_raw(std::span<const std::int32_t> trace,
                   std::size_t samples_per_quadrature, std::int32_t* out,
                   std::size_t out_stride) const
    requires(kernel_fast_path)
  {
    const std::size_t n = samples_per_quadrature;
    KLINQ_REQUIRE(trace.size() == 2 * n, "fixed_frontend: trace width != 2N");
    KLINQ_REQUIRE(n >= groups_, "fixed_frontend: fewer samples than groups");
    KLINQ_REQUIRE(!use_mf_ || mf_envelope_.size() == 2 * n,
                  "fixed_frontend: envelope width does not match this trace "
                  "duration (rebuild the front-end for the new duration)");

    // AVG: adder tree per group (exact int64 sum, one saturation), multiply
    // by the reciprocal group length through the kernel post-scaler. Group
    // lengths take at most two values (floor/ceil of n/groups), so the
    // reciprocal — a configuration constant in hardware — is recomputed
    // only when the length changes, not per group.
    std::size_t cached_length = 0;
    std::int64_t cached_reciprocal = 0;
    for (std::size_t quadrature = 0; quadrature < 2; ++quadrature) {
      for (std::size_t g = 0; g < groups_; ++g) {
        const std::size_t begin = g * n / groups_;
        const std::size_t end = (g + 1) * n / groups_;
        if (end - begin != cached_length) {
          cached_length = end - begin;
          cached_reciprocal =
              Fixed::from_double(1.0 / static_cast<double>(cached_length))
                  .raw();
        }
        const std::int32_t* samples = trace.data() + quadrature * n;
        const std::int64_t sum =
            fx::kernels::sum_row(samples + begin, end - begin);
        const std::int64_t tree =
            fx::kernels::clamp_raw(sum, Fixed::raw_min, Fixed::raw_max);
        out[(quadrature * groups_ + g) * out_stride] =
            static_cast<std::int32_t>(fx::kernels::round_shift_clamp(
                tree * cached_reciprocal, Fixed::frac_bits, Fixed::raw_min,
                Fixed::raw_max));
      }
    }

    // MF: wide MAC over the raw quantized trace.
    const std::size_t width = output_width();
    if (use_mf_) {
      out[(width - 1) * out_stride] =
          static_cast<std::int32_t>(fx::kernels::mac_row(
              mf_envelope_raw_.data(), trace.data(), trace.size(), 0, kSpec));
    }

    // NORM: (x − x_min) >> k for every concatenated feature. For k >= 0 the
    // kernel post-scaler IS shifted_right (round to nearest on the
    // magnitude, ties away, then the rails); negative exponents (a
    // saturating shift left) fall back to the reference arithmetic.
    for (std::size_t c = 0; c < width; ++c) {
      const std::int64_t diff = fx::kernels::clamp_raw(
          out[c * out_stride] - x_min_[c].raw(), Fixed::raw_min,
          Fixed::raw_max);
      if (shift_[c] >= 0) {
        out[c * out_stride] =
            static_cast<std::int32_t>(fx::kernels::round_shift_clamp(
                diff, shift_[c], Fixed::raw_min, Fixed::raw_max));
      } else {
        out[c * out_stride] = static_cast<std::int32_t>(
            Fixed::from_raw(diff).shifted_left(-shift_[c]).raw());
      }
    }
  }

 private:
  static constexpr fx::kernels::mac_spec kSpec =
      fx::kernels::spec_or_default<Fixed>();

  std::size_t groups_ = 0;
  bool use_mf_ = false;
  std::vector<Fixed> mf_envelope_;
  aligned_vector<std::int32_t> mf_envelope_raw_;
  std::vector<Fixed> x_min_;
  std::vector<int> shift_;
};

}  // namespace klinq::hw
