// Cycle-accurate latency model of the KLiNQ datapath (paper §IV / Table III).
//
// The PL pipeline is: { MF ∥ (AVG → NORM) } → CONCAT → FC×3 → decision.
// Primitive timings follow the paper's description:
//   * multiplications run in a 4-stage pipeline (4 cycles),
//   * an n-input adder tree (plus bias) takes ⌈log2 n⌉ + 1 cycles,
//   * ReLU is a 1-cycle sign check,
//   * normalization is 2 cycles (subtract, shift — division-free),
//   * one output register per module.
//
// Two composition modes:
//   analytic        — every layer pays its full multiply + tree + ReLU
//                     latency; an upper bound with no inter-layer overlap.
//   paper_calibrated— models the overlap the paper's design achieves:
//                     layers after the first are fully pipelined behind it,
//                     and the MF MAC is folded into 32-element chunks. This
//                     reproduces Table III exactly: MF=11, AVG&NORM=9/6,
//                     network=12/15, total 32 ns for both configurations.
//
// Cycle→time conversion: Table III's per-module latencies are written in ns
// and sum to 32 ns; they behave as 1 cycle = 1 ns (1 GHz equivalent
// pipeline rate). clock_ghz rescales if desired.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace klinq::hw {

enum class latency_mode { analytic, paper_calibrated };

/// Static description of one per-qubit datapath configuration.
struct datapath_config {
  std::string name;
  /// Complex samples per trace (N); the MF spans 2N inputs.
  std::size_t trace_samples = 500;
  /// Averaging groups per quadrature (G).
  std::size_t groups_per_quadrature = 15;
  /// Input width of each FC layer, e.g. {31, 16, 8} for FNN-A.
  std::vector<std::size_t> layer_inputs = {31, 16, 8};

  /// Samples averaged per group (⌈N/G⌉ — the deepest group's tree).
  std::size_t max_group_size() const;
};

/// Whether hardware synthesized for `config` can process a shorter runtime
/// trace without re-synthesis: the averaging trees must be deep enough for
/// the runtime group size. Latency is a property of the synthesized
/// pipeline, so any supported runtime duration runs at the same cycle count
/// (paper §V-D: "the latency remains constant across all readout traces").
bool supports_runtime_duration(const datapath_config& config,
                               std::size_t runtime_trace_samples);

/// FNN-A datapath at a given trace length (default: paper's 1 µs).
datapath_config fnn_a_datapath(std::size_t trace_samples = 500);
/// FNN-B datapath.
datapath_config fnn_b_datapath(std::size_t trace_samples = 500);

struct stage_latency {
  std::string name;
  std::size_t cycles = 0;
};

struct latency_breakdown {
  std::vector<stage_latency> stages;
  /// Paper-style total: sum of all module latencies (§V-D sums MF +
  /// AVG&NORM + network even though MF and AVG run concurrently).
  std::size_t total_serial_cycles = 0;
  /// Critical path with MF and AVG&NORM in parallel.
  std::size_t total_critical_path_cycles = 0;

  /// Nanoseconds at the given pipeline rate (default 1 GHz ⇒ cycles = ns).
  double serial_ns(double clock_ghz = 1.0) const {
    return static_cast<double>(total_serial_cycles) / clock_ghz;
  }
  double critical_path_ns(double clock_ghz = 1.0) const {
    return static_cast<double>(total_critical_path_cycles) / clock_ghz;
  }

  std::size_t stage_cycles(const std::string& name) const;
};

/// Computes the per-stage and total latency of a datapath configuration.
latency_breakdown compute_latency(const datapath_config& config,
                                  latency_mode mode);

/// Readout throughput: the datapath is fully pipelined, so a new trace can
/// enter every trace-duration; the decision trails the last sample by the
/// pipeline latency. This is what bounds mid-circuit feedback timing.
struct throughput_estimate {
  /// Decision delay after the final ADC sample (ns).
  double decision_latency_ns = 0.0;
  /// Total measurement-to-decision time: trace duration + latency (ns).
  double total_readout_ns = 0.0;
  /// Sustained discrimination rate with back-to-back traces (shots/s).
  double shots_per_second = 0.0;
};

throughput_estimate estimate_throughput(const datapath_config& config,
                                        latency_mode mode,
                                        double clock_ghz = 1.0);

/// Primitive timing constants (exposed for tests/documentation).
struct pipeline_timing {
  static constexpr std::size_t multiplier_stages = 4;
  static constexpr std::size_t relu_cycles = 1;
  static constexpr std::size_t normalize_cycles = 2;  // subtract + shift
  static constexpr std::size_t output_register = 1;
  /// MF MAC folding width in paper_calibrated mode.
  static constexpr std::size_t mf_fold_width = 32;
};

}  // namespace klinq::hw
