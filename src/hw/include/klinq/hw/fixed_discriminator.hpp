// End-to-end fixed-point qubit discriminator: the deployable FPGA model.
//
// Combines the fixed front-end (AVG/NORM/MF) with the quantized student
// network. predict_state() is the full ADC-to-decision path in hardware
// numerics; agreement_with_float() quantifies how often the fixed datapath
// reproduces the float model's decision (the paper's "maintains
// discrimination accuracy" claim for Q16.16).
#pragma once

#include <span>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/hw/fixed_frontend.hpp"
#include "klinq/hw/quantized_network.hpp"
#include "klinq/kd/distiller.hpp"

namespace klinq::hw {

template <class Fixed>
class fixed_discriminator {
 public:
  fixed_discriminator() = default;

  /// Quantizes a trained student model into hardware form.
  explicit fixed_discriminator(const kd::student_model& student)
      : frontend_(student.pipeline()), net_(student.net()) {
    KLINQ_REQUIRE(frontend_.output_width() == net_.input_dim(),
                  "fixed_discriminator: front-end/network width mismatch");
  }

  const fixed_frontend<Fixed>& frontend() const noexcept { return frontend_; }
  const quantized_network<Fixed>& net() const noexcept { return net_; }

  /// Output logit register for one float (ADC) trace.
  Fixed logit(std::span<const float> trace,
              std::size_t samples_per_quadrature) const {
    const std::vector<Fixed> quantized =
        fixed_frontend<Fixed>::quantize_trace(trace);
    thread_local std::vector<Fixed> features;
    features.assign(frontend_.output_width(), Fixed::zero());
    frontend_.extract(quantized, samples_per_quadrature, features);
    return net_.forward_logit(features);
  }

  bool predict_state(std::span<const float> trace,
                     std::size_t samples_per_quadrature) const {
    return !logit(trace, samples_per_quadrature).sign_bit();
  }

  /// Assignment accuracy of the fixed-point datapath on a dataset.
  double accuracy(const data::trace_dataset& dataset) const {
    std::size_t correct = 0;
    for (std::size_t r = 0; r < dataset.size(); ++r) {
      const bool predicted =
          predict_state(dataset.trace(r), dataset.samples_per_quadrature());
      correct += (predicted == dataset.label_state(r)) ? 1 : 0;
    }
    return dataset.empty() ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(dataset.size());
  }

  /// Fraction of traces where fixed and float decisions agree.
  double agreement_with_float(const kd::student_model& student,
                              const data::trace_dataset& dataset) const {
    std::size_t agree = 0;
    for (std::size_t r = 0; r < dataset.size(); ++r) {
      const bool fixed_decision =
          predict_state(dataset.trace(r), dataset.samples_per_quadrature());
      const bool float_decision = student.predict_state(
          dataset.trace(r), dataset.samples_per_quadrature());
      agree += (fixed_decision == float_decision) ? 1 : 0;
    }
    return dataset.empty() ? 1.0
                           : static_cast<double>(agree) /
                                 static_cast<double>(dataset.size());
  }

 private:
  fixed_frontend<Fixed> frontend_;
  quantized_network<Fixed> net_;
};

}  // namespace klinq::hw
