// End-to-end fixed-point qubit discriminator: the deployable FPGA model.
//
// Combines the fixed front-end (AVG/NORM/MF) with the quantized student
// network. predict_state() is the full ADC-to-decision path in hardware
// numerics; agreement_with_float() quantifies how often the fixed datapath
// reproduces the float model's decision (the paper's "maintains
// discrimination accuracy" claim for Q16.16).
//
// Dataset-scale evaluation goes through logits(): traces are quantized and
// feature-extracted into cache-blocked tiles and pushed through the batched
// fixed-point forward, parallelized over the global thread pool with one
// scratch arena per worker chunk — bit-identical to the single-shot path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "klinq/common/aligned.hpp"
#include "klinq/common/thread_pool.hpp"
#include "klinq/data/trace_dataset.hpp"
#include "klinq/hw/fixed_frontend.hpp"
#include "klinq/hw/quantized_network.hpp"
#include "klinq/kd/distiller.hpp"

namespace klinq::hw {

/// Reusable buffers for the full trace→decision path: the quantized trace
/// register file, a feature tile, and the network's ping-pong arena. The
/// `_raw` members back the kernel fast path (32-bit formats): the quantized
/// trace, the feature-major feature plane and the tile's output logits as
/// raw int32 registers.
template <class Fixed>
struct discriminator_scratch {
  std::vector<Fixed> trace;
  la::matrix<Fixed> features;
  quantized_scratch<Fixed> net;
  aligned_vector<std::int32_t> trace_raw;
  aligned_vector<std::int32_t> plane_raw;
  aligned_vector<std::int32_t> logits_raw;
};

template <class Fixed>
class fixed_discriminator {
 public:
  fixed_discriminator() = default;

  /// Quantizes a trained student model into hardware form.
  explicit fixed_discriminator(const kd::student_model& student)
      : frontend_(student.pipeline()), net_(student.net()) {
    KLINQ_REQUIRE(frontend_.output_width() == net_.input_dim(),
                  "fixed_discriminator: front-end/network width mismatch");
  }

  const fixed_frontend<Fixed>& frontend() const noexcept { return frontend_; }
  const quantized_network<Fixed>& net() const noexcept { return net_; }

  /// Output logit register for one float (ADC) trace, through caller-provided
  /// scratch (allocation-free when reused).
  Fixed logit(std::span<const float> trace, std::size_t samples_per_quadrature,
              discriminator_scratch<Fixed>& scratch) const {
    if constexpr (quantized_network<Fixed>::kernel_fast_path) {
      // Raw-register pipeline, exactly like one lane of logits_block — the
      // mid-circuit repeated-measurement hot path.
      scratch.trace_raw.resize(trace.size());
      fixed_frontend<Fixed>::quantize_trace_raw(trace, scratch.trace_raw);
      scratch.plane_raw.resize(frontend_.output_width());
      frontend_.extract_raw(scratch.trace_raw, samples_per_quadrature,
                            scratch.plane_raw.data(), 1);
      return Fixed::from_raw(
          net_.forward_logit_raw(scratch.plane_raw.data(), scratch.net));
    } else {
      scratch.trace.resize(trace.size());
      fixed_frontend<Fixed>::quantize_trace(trace, scratch.trace);
      if (scratch.features.rows() != 1 ||
          scratch.features.cols() != frontend_.output_width()) {
        scratch.features.resize(1, frontend_.output_width());
      }
      frontend_.extract(scratch.trace, samples_per_quadrature,
                        scratch.features.row(0));
      return net_.forward_logit(scratch.features.row(0), scratch.net);
    }
  }

  /// Convenience single-shot overload (allocates its own scratch).
  Fixed logit(std::span<const float> trace,
              std::size_t samples_per_quadrature) const {
    discriminator_scratch<Fixed> scratch;
    return logit(trace, samples_per_quadrature, scratch);
  }

  /// Per-shot decision through caller-provided scratch — the repeated-
  /// measurement (mid-circuit) hot path: zero allocation once the scratch
  /// is warm.
  bool predict_state(std::span<const float> trace,
                     std::size_t samples_per_quadrature,
                     discriminator_scratch<Fixed>& scratch) const {
    return !logit(trace, samples_per_quadrature, scratch).sign_bit();
  }

  bool predict_state(std::span<const float> trace,
                     std::size_t samples_per_quadrature) const {
    return !logit(trace, samples_per_quadrature).sign_bit();
  }

  /// Serial ADC-to-logit evaluation of dataset rows [row_begin, row_end)
  /// through caller-provided scratch: quantize + extract into cache-blocked
  /// tiles, then the batched fixed-point forward. Writes out[r - row_begin]
  /// for each row r; bit-identical to logit() per trace. Zero steady-state
  /// allocation once the scratch is warm — this is the serve engine's shard
  /// executor.
  void logits_block(const data::trace_dataset& dataset, std::size_t row_begin,
                    std::size_t row_end, std::span<Fixed> out,
                    discriminator_scratch<Fixed>& scratch) const {
    KLINQ_REQUIRE(row_begin <= row_end && row_end <= dataset.size(),
                  "fixed_discriminator: row range out of bounds");
    KLINQ_REQUIRE(out.size() == row_end - row_begin,
                  "fixed_discriminator: one logit per row required");
    const std::size_t n = dataset.samples_per_quadrature();
    const std::size_t width = frontend_.output_width();
    constexpr std::size_t kTile = quantized_network<Fixed>::kBatchTile;
    if constexpr (quantized_network<Fixed>::kernel_fast_path) {
      // Raw-register pipeline: quantize and extract straight into the
      // feature-major plane, forward the whole tile through the dispatched
      // kernels — no fixed<I,F> temporaries anywhere on the hot path.
      scratch.trace_raw.resize(dataset.feature_width());
      scratch.plane_raw.resize(width * kTile);
      scratch.logits_raw.resize(kTile);
      for (std::size_t tile_begin = row_begin; tile_begin < row_end;
           tile_begin += kTile) {
        const std::size_t tile = std::min(kTile, row_end - tile_begin);
        if (tile < 4) {
          // Too few shots for the tile kernel's lanes: extract contiguously
          // and run the row kernel, which vectorizes along the features.
          for (std::size_t s = 0; s < tile; ++s) {
            fixed_frontend<Fixed>::quantize_trace_raw(
                dataset.trace(tile_begin + s), scratch.trace_raw);
            frontend_.extract_raw(scratch.trace_raw, n,
                                  scratch.plane_raw.data(), 1);
            out[tile_begin - row_begin + s] = Fixed::from_raw(
                net_.forward_logit_raw(scratch.plane_raw.data(),
                                       scratch.net));
          }
          continue;
        }
        for (std::size_t s = 0; s < tile; ++s) {
          fixed_frontend<Fixed>::quantize_trace_raw(
              dataset.trace(tile_begin + s), scratch.trace_raw);
          frontend_.extract_raw(scratch.trace_raw, n,
                                scratch.plane_raw.data() + s, kTile);
        }
        net_.forward_logits_plane(scratch.plane_raw.data(), tile,
                                  scratch.logits_raw.data(), scratch.net);
        for (std::size_t s = 0; s < tile; ++s) {
          out[tile_begin - row_begin + s] =
              Fixed::from_raw(scratch.logits_raw[s]);
        }
      }
    } else {
      scratch.trace.resize(dataset.feature_width());
      for (std::size_t tile_begin = row_begin; tile_begin < row_end;
           tile_begin += kTile) {
        const std::size_t tile = std::min(kTile, row_end - tile_begin);
        if (scratch.features.rows() != tile ||
            scratch.features.cols() != width) {
          scratch.features.resize(tile, width);
        }
        for (std::size_t s = 0; s < tile; ++s) {
          fixed_frontend<Fixed>::quantize_trace(dataset.trace(tile_begin + s),
                                                scratch.trace);
          frontend_.extract(scratch.trace, n, scratch.features.row(s));
        }
        net_.forward_logits(scratch.features,
                            out.subspan(tile_begin - row_begin, tile),
                            scratch.net);
      }
    }
  }

  /// Lane-packed single-shot evaluation: one row drawn from each of `lanes`
  /// (possibly distinct) datasets, pushed through one shared feature plane
  /// and one network tile. datasets[s]/rows[s] name lane s's trace; out[s]
  /// receives its logit. Bit-identical to logit()/logits_block() per trace —
  /// the integer datapath is exact, so lane position and tile width never
  /// change a register. This is the serve coalescer's cross-request
  /// lane-pack executor. Requires 0 < lanes <= kBatchTile.
  void logits_lanes(const data::trace_dataset* const* datasets,
                    const std::size_t* rows, std::size_t lanes,
                    std::span<Fixed> out,
                    discriminator_scratch<Fixed>& scratch) const {
    constexpr std::size_t kTile = quantized_network<Fixed>::kBatchTile;
    KLINQ_REQUIRE(lanes > 0 && lanes <= kTile,
                  "fixed_discriminator: lane count exceeds the network tile");
    KLINQ_REQUIRE(out.size() == lanes,
                  "fixed_discriminator: one logit per lane required");
    if constexpr (quantized_network<Fixed>::kernel_fast_path) {
      const std::size_t width = frontend_.output_width();
      scratch.plane_raw.resize(width * kTile);
      scratch.logits_raw.resize(kTile);
      for (std::size_t s = 0; s < lanes; ++s) {
        const data::trace_dataset& ds = *datasets[s];
        scratch.trace_raw.resize(ds.feature_width());
        fixed_frontend<Fixed>::quantize_trace_raw(ds.trace(rows[s]),
                                                  scratch.trace_raw);
        frontend_.extract_raw(scratch.trace_raw, ds.samples_per_quadrature(),
                              scratch.plane_raw.data() + s, kTile);
      }
      net_.forward_logits_plane(scratch.plane_raw.data(), lanes,
                                scratch.logits_raw.data(), scratch.net);
      for (std::size_t s = 0; s < lanes; ++s) {
        out[s] = Fixed::from_raw(scratch.logits_raw[s]);
      }
    } else {
      // Wide formats stay on the fixed<I,F> reference path per lane.
      for (std::size_t s = 0; s < lanes; ++s) {
        out[s] = logit(datasets[s]->trace(rows[s]),
                       datasets[s]->samples_per_quadrature(), scratch);
      }
    }
  }

  /// Batched ADC-to-logit evaluation: one output register per dataset row.
  /// Parallelized over trace blocks; bit-identical to logit() per trace.
  void logits(const data::trace_dataset& dataset, std::span<Fixed> out) const {
    KLINQ_REQUIRE(out.size() == dataset.size(),
                  "fixed_discriminator: one logit per trace required");
    if (dataset.empty()) return;
    const auto evaluate_block = [&](std::size_t begin, std::size_t end) {
      // One scratch arena per worker chunk: allocations are per-chunk (a
      // handful per pool dispatch), never per shot.
      discriminator_scratch<Fixed> scratch;
      logits_block(dataset, begin, end, out.subspan(begin, end - begin),
                   scratch);
    };
    if (dataset.size() < quantized_network<Fixed>::kBatchTile) {
      evaluate_block(0, dataset.size());
      return;
    }
    parallel_for_chunked(0, dataset.size(), evaluate_block);
  }

  /// Batched hard decisions (1 = state |1⟩), one per dataset row.
  void predict_states(const data::trace_dataset& dataset,
                      std::span<std::uint8_t> out) const {
    KLINQ_REQUIRE(out.size() == dataset.size(),
                  "fixed_discriminator: one decision per trace required");
    std::vector<Fixed> registers(dataset.size());
    logits(dataset, registers);
    for (std::size_t r = 0; r < registers.size(); ++r) {
      out[r] = registers[r].sign_bit() ? 0 : 1;
    }
  }

  /// Assignment accuracy of the fixed-point datapath on a dataset.
  double accuracy(const data::trace_dataset& dataset) const {
    if (dataset.empty()) return 0.0;
    std::vector<Fixed> registers(dataset.size());
    logits(dataset, registers);
    std::size_t correct = 0;
    for (std::size_t r = 0; r < registers.size(); ++r) {
      const bool predicted = !registers[r].sign_bit();
      correct += (predicted == dataset.label_state(r)) ? 1 : 0;
    }
    return static_cast<double>(correct) /
           static_cast<double>(dataset.size());
  }

  /// Fraction of traces where fixed and float decisions agree.
  double agreement_with_float(const kd::student_model& student,
                              const data::trace_dataset& dataset) const {
    if (dataset.empty()) return 1.0;
    std::vector<Fixed> registers(dataset.size());
    logits(dataset, registers);
    const std::vector<float> float_logits = student.predict_batch(dataset);
    std::size_t agree = 0;
    for (std::size_t r = 0; r < registers.size(); ++r) {
      const bool fixed_decision = !registers[r].sign_bit();
      const bool float_decision = float_logits[r] >= 0.0f;
      agree += (fixed_decision == float_decision) ? 1 : 0;
    }
    return static_cast<double>(agree) / static_cast<double>(dataset.size());
  }

 private:
  fixed_frontend<Fixed> frontend_;
  quantized_network<Fixed> net_;
};

}  // namespace klinq::hw
