// FPGA resource estimator (paper Table III, ZCU216 target).
//
// Parameterized first-order area model. Counts are derived from the module
// structure (multiplier counts after time-multiplexing, adder-tree widths,
// pipeline register files) scaled by calibration constants fitted against
// the paper's reported utilization. The estimator's goal is the *shape* of
// Table III — MF dominates DSP usage, AVG&NORM synthesizes to zero DSPs
// (shift-based normalization), FNN-B costs ≈4× FNN-A — with absolute
// numbers within a few tens of percent (residuals are tabulated in
// EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "klinq/hw/cycle_model.hpp"

namespace klinq::hw {

struct resource_estimate {
  std::size_t lut = 0;
  std::size_t ff = 0;
  std::size_t dsp = 0;

  resource_estimate& operator+=(const resource_estimate& other) {
    lut += other.lut;
    ff += other.ff;
    dsp += other.dsp;
    return *this;
  }
};

/// ZCU216 (XCZU49DR) device totals, for utilization percentages.
struct device_capacity {
  std::size_t lut = 425280;
  std::size_t ff = 850560;
  std::size_t dsp = 4272;
};

/// Calibration constants. Defaults are fitted to Table III; the MF module
/// uses full 32×32 multipliers (3 DSP48E2 each), while the network neurons
/// use single-DSP multiply-accumulate slices — matching how the paper's
/// design spends an order of magnitude more DSPs on the shared MF than on
/// each per-qubit network.
struct resource_calibration {
  std::size_t word_bits = 32;
  // --- MF module ---
  std::size_t mf_time_mux = 8;      // input folding factor
  double mf_dsp_per_mult = 3.0;     // 32×32 product on DSP48E2
  double mf_lut_per_mult = 150.0;   // operand muxing + control per multiplier
  std::size_t mf_pipeline_stages = 3;
  // --- AVG&NORM module ---
  double avg_lut_per_adder_bit = 0.55;
  double avg_ff_per_tree_bit = 2.0;
  // --- network module ---
  std::size_t net_time_mux = 16;    // inputs share a MAC slice over 16 rounds
  double net_dsp_per_mult = 1.0;
  double net_lut_per_mult = 110.0;
  double net_lut_per_adder_bit = 0.12;
  double net_ff_per_mult_bit = 4.0;
};

/// MF block over 2N trace inputs (shared across all qubits).
resource_estimate estimate_mf(const datapath_config& config,
                              const resource_calibration& cal = {});

/// Per-qubit AVG&NORM block (2G parallel group trees + normalizers).
resource_estimate estimate_avg_norm(const datapath_config& config,
                                    const resource_calibration& cal = {});

/// Per-qubit FC network block.
resource_estimate estimate_network(const datapath_config& config,
                                   const resource_calibration& cal = {});

/// Utilization percentage against a device capacity.
double utilization_pct(std::size_t used, std::size_t capacity);

}  // namespace klinq::hw
