// Table III assembly: resource utilization + latency per component.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "klinq/hw/cycle_model.hpp"
#include "klinq/hw/resource_model.hpp"

namespace klinq::hw {

struct component_report {
  std::string component;   // "MF", "AVG&NORM (Q1,4,5)", ...
  resource_estimate resources;
  std::size_t latency_cycles = 0;
};

struct utilization_report {
  std::vector<component_report> rows;
  device_capacity capacity;
  /// End-to-end latency per configuration (paper-style serial sum).
  std::size_t total_cycles_fnn_a = 0;
  std::size_t total_cycles_fnn_b = 0;
};

/// Builds the full Table III equivalent for both datapath configurations.
utilization_report build_utilization_report(
    latency_mode mode = latency_mode::paper_calibrated,
    const resource_calibration& cal = {},
    std::size_t trace_samples = 500);

/// Pretty-prints in the paper's row layout with utilization percentages.
void print_utilization_report(const utilization_report& report,
                              std::ostream& out);

}  // namespace klinq::hw
