#include "klinq/hw/report.hpp"

#include <iomanip>
#include <ostream>

namespace klinq::hw {

utilization_report build_utilization_report(latency_mode mode,
                                            const resource_calibration& cal,
                                            std::size_t trace_samples) {
  const datapath_config config_a = fnn_a_datapath(trace_samples);
  const datapath_config config_b = fnn_b_datapath(trace_samples);
  const latency_breakdown lat_a = compute_latency(config_a, mode);
  const latency_breakdown lat_b = compute_latency(config_b, mode);

  utilization_report report;
  // MF is shared (time-multiplexed across qubits): counted once.
  report.rows.push_back({"MF (shared)", estimate_mf(config_a, cal),
                         lat_a.stage_cycles("MF")});
  report.rows.push_back({"AVG&NORM (Q1,4,5)", estimate_avg_norm(config_a, cal),
                         lat_a.stage_cycles("AVG&NORM")});
  report.rows.push_back({"Network (Q1,4,5)", estimate_network(config_a, cal),
                         lat_a.stage_cycles("Network")});
  report.rows.push_back({"AVG&NORM (Q2,3)", estimate_avg_norm(config_b, cal),
                         lat_b.stage_cycles("AVG&NORM")});
  report.rows.push_back({"Network (Q2,3)", estimate_network(config_b, cal),
                         lat_b.stage_cycles("Network")});
  report.total_cycles_fnn_a = lat_a.total_serial_cycles;
  report.total_cycles_fnn_b = lat_b.total_serial_cycles;
  return report;
}

void print_utilization_report(const utilization_report& report,
                              std::ostream& out) {
  out << std::left << std::setw(22) << "Component" << std::right
      << std::setw(10) << "LUT" << std::setw(8) << "(%)" << std::setw(10)
      << "FF" << std::setw(8) << "(%)" << std::setw(8) << "DSP"
      << std::setw(8) << "(%)" << std::setw(14) << "Latency(cyc)" << "\n";
  for (const auto& row : report.rows) {
    out << std::left << std::setw(22) << row.component << std::right
        << std::setw(10) << row.resources.lut << std::setw(7) << std::fixed
        << std::setprecision(2)
        << utilization_pct(row.resources.lut, report.capacity.lut) << "%"
        << std::setw(10) << row.resources.ff << std::setw(7)
        << utilization_pct(row.resources.ff, report.capacity.ff) << "%"
        << std::setw(8) << row.resources.dsp << std::setw(7)
        << utilization_pct(row.resources.dsp, report.capacity.dsp) << "%"
        << std::setw(13) << row.latency_cycles << "\n";
  }
  out << "End-to-end latency:  FNN-A " << report.total_cycles_fnn_a
      << " cycles, FNN-B " << report.total_cycles_fnn_b
      << " cycles (1 cycle = 1 ns at the paper's pipeline rate)\n";
}

}  // namespace klinq::hw
