#include "klinq/hw/cycle_model.hpp"

#include <algorithm>

#include "klinq/common/error.hpp"
#include "klinq/common/math.hpp"

namespace klinq::hw {

std::size_t datapath_config::max_group_size() const {
  KLINQ_REQUIRE(groups_per_quadrature > 0, "datapath: zero groups");
  return (trace_samples + groups_per_quadrature - 1) / groups_per_quadrature;
}

bool supports_runtime_duration(const datapath_config& config,
                               std::size_t runtime_trace_samples) {
  KLINQ_REQUIRE(runtime_trace_samples >= config.groups_per_quadrature,
                "runtime trace shorter than one sample per group");
  datapath_config runtime = config;
  runtime.trace_samples = runtime_trace_samples;
  return runtime.max_group_size() <= config.max_group_size();
}

datapath_config fnn_a_datapath(std::size_t trace_samples) {
  return {.name = "FNN-A",
          .trace_samples = trace_samples,
          .groups_per_quadrature = 15,
          .layer_inputs = {31, 16, 8}};
}

datapath_config fnn_b_datapath(std::size_t trace_samples) {
  return {.name = "FNN-B",
          .trace_samples = trace_samples,
          .groups_per_quadrature = 100,
          .layer_inputs = {201, 16, 8}};
}

std::size_t latency_breakdown::stage_cycles(const std::string& name) const {
  for (const auto& stage : stages) {
    if (stage.name == name) return stage.cycles;
  }
  throw invalid_argument_error("latency_breakdown: no stage named " + name);
}

namespace {

std::size_t adder_tree_cycles(std::size_t inputs) {
  // ⌈log2 n⌉ tree levels plus the bias/final-accumulate stage.
  return static_cast<std::size_t>(ceil_log2(inputs)) + 1;
}

std::size_t mf_cycles(const datapath_config& config, latency_mode mode) {
  if (mode == latency_mode::analytic) {
    // Fully parallel MAC over 2N inputs: multiply pipeline + full tree + reg.
    return pipeline_timing::multiplier_stages +
           adder_tree_cycles(2 * config.trace_samples) +
           pipeline_timing::output_register;
  }
  // Calibrated: the MF MAC is folded into 32-element chunks whose partial
  // sums stream through a fixed 32-input tree — latency is set by one fold.
  return pipeline_timing::multiplier_stages +
         adder_tree_cycles(pipeline_timing::mf_fold_width) +
         pipeline_timing::output_register;
}

std::size_t avg_norm_cycles(const datapath_config& config, latency_mode mode) {
  const std::size_t group_tree =
      static_cast<std::size_t>(ceil_log2(config.max_group_size()));
  if (mode == latency_mode::analytic) {
    // Tree + reciprocal multiply + normalize + register.
    return group_tree + 1 + pipeline_timing::normalize_cycles +
           pipeline_timing::output_register;
  }
  // Calibrated: the reciprocal multiply overlaps the last tree level.
  return group_tree + pipeline_timing::normalize_cycles +
         pipeline_timing::output_register;
}

std::size_t network_cycles(const datapath_config& config, latency_mode mode) {
  KLINQ_REQUIRE(!config.layer_inputs.empty(), "datapath: no layers");
  if (mode == latency_mode::analytic) {
    std::size_t total = 0;
    for (const std::size_t n_in : config.layer_inputs) {
      total += pipeline_timing::multiplier_stages + adder_tree_cycles(n_in) +
               pipeline_timing::relu_cycles;
    }
    return total;
  }
  // Calibrated: only the first layer's multiply+tree is exposed; later
  // layers are fully pipelined behind it and add a single drain cycle plus
  // the final output register:
  //   4 + (⌈log2 n₁⌉ + 1) + 1 (ReLU) + 1 (output)
  // FNN-A: 4+6+1+1 = 12, FNN-B: 4+9+1+1 = 15, exactly Table III.
  return pipeline_timing::multiplier_stages +
         adder_tree_cycles(config.layer_inputs.front()) +
         pipeline_timing::relu_cycles + pipeline_timing::output_register;
}

}  // namespace

throughput_estimate estimate_throughput(const datapath_config& config,
                                        latency_mode mode, double clock_ghz) {
  KLINQ_REQUIRE(clock_ghz > 0, "throughput: clock must be positive");
  const latency_breakdown latency = compute_latency(config, mode);
  throughput_estimate estimate;
  estimate.decision_latency_ns = latency.serial_ns(clock_ghz);
  const double trace_ns =
      static_cast<double>(config.trace_samples) * 2.0;  // 500 MS/s sampling
  estimate.total_readout_ns = trace_ns + estimate.decision_latency_ns;
  estimate.shots_per_second = 1e9 / trace_ns;  // pipelined: II = trace time
  return estimate;
}

latency_breakdown compute_latency(const datapath_config& config,
                                  latency_mode mode) {
  latency_breakdown result;
  const std::size_t mf = mf_cycles(config, mode);
  const std::size_t avg = avg_norm_cycles(config, mode);
  const std::size_t net = network_cycles(config, mode);
  result.stages = {{"MF", mf}, {"AVG&NORM", avg}, {"Network", net}};
  result.total_serial_cycles = mf + avg + net;
  result.total_critical_path_cycles = std::max(mf, avg) + net;
  return result;
}

}  // namespace klinq::hw
