#include "klinq/hw/verilog_emitter.hpp"

#include <iomanip>
#include <sstream>

#include "klinq/common/error.hpp"

namespace klinq::hw {

namespace {

/// 32-bit two's-complement hex literal of a Q16.16 register value.
std::string hex32(std::int64_t raw) {
  const auto bits = static_cast<std::uint32_t>(static_cast<std::int32_t>(raw));
  std::ostringstream out;
  out << "32'h" << std::hex << std::setw(8) << std::setfill('0') << bits;
  return out.str();
}

}  // namespace

std::string emit_student_verilog(const quantized_network<fx::q16_16>& net,
                                 const verilog_options& options) {
  KLINQ_REQUIRE(net.layer_count() > 0, "verilog emitter: empty network");
  const auto widths = net.layer_input_widths();
  const std::size_t n_layers = net.layer_count();

  std::ostringstream v;
  v << "// " << options.banner << "\n";
  v << "// topology:";
  for (const auto w : widths) v << " " << w;
  v << " -> 1 ; " << net.parameter_count()
    << " parameters, Q16.16 saturating arithmetic\n";
  v << "`timescale 1ns/1ps\n\n";
  v << "module " << options.module_name << " (\n";
  v << "    input  logic clk,\n";
  v << "    input  logic rst,\n";
  v << "    input  logic in_valid,\n";
  v << "    input  logic signed [" << widths.front() * 32 - 1
    << ":0] in_bus,\n";
  v << "    output logic out_valid,\n";
  v << "    output logic out_state,\n";
  v << "    output logic signed [31:0] out_logit\n";
  v << ");\n\n";

  // Saturation helper: clamp a 64-bit accumulator to the Q16.16 rails —
  // the activation stage's overflow handling (paper §IV).
  v << "  function automatic logic signed [31:0] sat64 (input logic signed "
       "[63:0] acc);\n";
  v << "    if (acc > 64'sh000000007fffffff) sat64 = 32'sh7fffffff;\n";
  v << "    else if (acc < -64'sh0000000080000000) sat64 = 32'sh80000000;\n";
  v << "    else sat64 = acc[31:0];\n";
  v << "  endfunction\n\n";

  // Q16.16 multiply: 64-bit product, arithmetic shift back by 16.\n
  v << "  function automatic logic signed [63:0] qmul (input logic signed "
       "[31:0] a, input logic signed [31:0] b);\n";
  v << "    logic signed [63:0] wide;\n";
  v << "    begin\n";
  v << "      wide = $signed(a) * $signed(b);\n";
  v << "      qmul = wide >>> 16;\n";
  v << "    end\n";
  v << "  endfunction\n\n";

  // Weight/bias localparams per layer.
  for (std::size_t l = 0; l < n_layers; ++l) {
    const std::size_t in_dim = widths[l];
    const std::size_t out_dim = (l + 1 < n_layers) ? widths[l + 1] : 1;
    v << "  // layer " << l << ": " << in_dim << " -> " << out_dim
      << (l + 1 < n_layers ? " (ReLU)" : " (logit)") << "\n";
    v << "  localparam logic signed [31:0] L" << l << "_W [0:"
      << in_dim * out_dim - 1 << "] = '{\n    ";
    const auto& weights = net.layer_weights(l);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      v << hex32(weights[i].raw());
      if (i + 1 < weights.size()) v << (i % 8 == 7 ? ",\n    " : ", ");
    }
    v << "};\n";
    const auto& bias = net.layer_bias(l);
    v << "  localparam logic signed [31:0] L" << l << "_B [0:" << out_dim - 1
      << "] = '{";
    for (std::size_t i = 0; i < bias.size(); ++i) {
      v << hex32(bias[i].raw());
      if (i + 1 < bias.size()) v << ", ";
    }
    v << "};\n\n";
  }

  // Per-stage registers and valid pipeline.
  v << "  logic [" << n_layers << ":0] valid_pipe;\n";
  for (std::size_t l = 0; l <= n_layers; ++l) {
    const std::size_t width = l < n_layers ? widths[l] : 1;
    v << "  logic signed [31:0] stage" << l << " [0:" << width - 1 << "];\n";
  }
  v << "\n  // stage 0: unpack the input bus\n";
  v << "  always_ff @(posedge clk) begin\n";
  v << "    if (rst) valid_pipe <= '0;\n";
  v << "    else begin\n";
  v << "      valid_pipe <= {valid_pipe[" << n_layers - 1 << ":0], in_valid};\n";
  v << "      for (int i = 0; i < " << widths.front() << "; i++)\n";
  v << "        stage0[i] <= in_bus[i*32 +: 32];\n";

  // One pipeline stage per layer: parallel neurons, MAC, bias, ReLU.
  for (std::size_t l = 0; l < n_layers; ++l) {
    const std::size_t in_dim = widths[l];
    const std::size_t out_dim = (l + 1 < n_layers) ? widths[l + 1] : 1;
    const bool is_last = (l + 1 == n_layers);
    v << "      // layer " << l << "\n";
    v << "      for (int n = 0; n < " << out_dim << "; n++) begin\n";
    v << "        automatic logic signed [63:0] acc;\n";
    v << "        acc = {{32{L" << l << "_B[n][31]}}, L" << l << "_B[n]};\n";
    v << "        for (int i = 0; i < " << in_dim << "; i++)\n";
    v << "          acc = acc + qmul(L" << l << "_W[n*" << in_dim
      << " + i], stage" << l << "[i]);\n";
    if (is_last) {
      v << "        stage" << l + 1 << "[n] <= sat64(acc);\n";
    } else {
      v << "        stage" << l + 1
        << "[n] <= sat64(acc) < 0 ? 32'sd0 : sat64(acc);  // sign-bit ReLU\n";
    }
    v << "      end\n";
  }
  v << "    end\n";
  v << "  end\n\n";

  v << "  assign out_valid = valid_pipe[" << n_layers << "];\n";
  v << "  assign out_logit = stage" << n_layers << "[0];\n";
  v << "  assign out_state = ~out_logit[31];  // sign-bit decision\n\n";
  v << "endmodule\n";
  return v.str();
}

std::string emit_student_testbench(const quantized_network<fx::q16_16>& net,
                                   const verilog_options& options) {
  const auto widths = net.layer_input_widths();
  const std::size_t in_dim = widths.front();
  std::ostringstream v;
  v << "// testbench for " << options.module_name << "\n";
  v << "`timescale 1ns/1ps\n\n";
  v << "module " << options.module_name << "_tb;\n";
  v << "  logic clk = 0, rst = 1, in_valid = 0;\n";
  v << "  logic signed [" << in_dim * 32 - 1 << ":0] in_bus = '0;\n";
  v << "  logic out_valid, out_state;\n";
  v << "  logic signed [31:0] out_logit;\n\n";
  v << "  " << options.module_name << " dut (.*);\n\n";
  v << "  always #5 clk = ~clk;\n\n";
  v << "  initial begin\n";
  v << "    repeat (2) @(posedge clk);\n";
  v << "    rst = 0;\n";
  v << "    // drive an all-ones Q16.16 feature vector\n";
  v << "    for (int i = 0; i < " << in_dim << "; i++)\n";
  v << "      in_bus[i*32 +: 32] = 32'sh00010000;\n";
  v << "    in_valid = 1;\n";
  v << "    @(posedge clk);\n";
  v << "    in_valid = 0;\n";
  v << "    wait (out_valid);\n";
  v << "    $display(\"logit=%0d state=%0d\", out_logit, out_state);\n";
  v << "    $finish;\n";
  v << "  end\n";
  v << "endmodule\n";
  return v.str();
}

}  // namespace klinq::hw
