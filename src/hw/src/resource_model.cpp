#include "klinq/hw/resource_model.hpp"

#include <cmath>

#include "klinq/common/error.hpp"
#include "klinq/common/math.hpp"

namespace klinq::hw {

namespace {

std::size_t round_count(double value) {
  return static_cast<std::size_t>(std::llround(value));
}

}  // namespace

resource_estimate estimate_mf(const datapath_config& config,
                              const resource_calibration& cal) {
  KLINQ_REQUIRE(cal.mf_time_mux > 0, "resource: mf_time_mux must be > 0");
  const std::size_t inputs = 2 * config.trace_samples;
  const std::size_t parallel_mults =
      (inputs + cal.mf_time_mux - 1) / cal.mf_time_mux;

  resource_estimate est;
  est.dsp = round_count(static_cast<double>(parallel_mults) *
                        cal.mf_dsp_per_mult);
  // Adder tree over the parallel partial products (double-width operands)
  // plus per-multiplier glue.
  const std::size_t tree_adders = parallel_mults > 0 ? parallel_mults - 1 : 0;
  est.lut = round_count(
      static_cast<double>(parallel_mults) * cal.mf_lut_per_mult +
      static_cast<double>(tree_adders) * 2.0 * cal.word_bits *
          cal.avg_lut_per_adder_bit);
  est.ff = parallel_mults * 2 * cal.word_bits * cal.mf_pipeline_stages;
  return est;
}

resource_estimate estimate_avg_norm(const datapath_config& config,
                                    const resource_calibration& cal) {
  const std::size_t groups = 2 * config.groups_per_quadrature;
  const std::size_t group_size = config.max_group_size();
  const std::size_t adders_per_group = group_size > 0 ? group_size - 1 : 0;
  const std::size_t tree_depth =
      static_cast<std::size_t>(ceil_log2(group_size));

  resource_estimate est;
  est.dsp = 0;  // shift-based normalization: no DSP blocks by construction
  // Group adder trees + the subtract/shift normalizer per feature.
  est.lut = round_count(static_cast<double>(groups) *
                        (static_cast<double>(adders_per_group + 2) *
                         cal.word_bits * cal.avg_lut_per_adder_bit));
  est.ff = round_count(static_cast<double>(groups) * cal.word_bits *
                       static_cast<double>(tree_depth) *
                       cal.avg_ff_per_tree_bit);
  return est;
}

resource_estimate estimate_network(const datapath_config& config,
                                   const resource_calibration& cal) {
  KLINQ_REQUIRE(cal.net_time_mux > 0, "resource: net_time_mux must be > 0");
  resource_estimate est;
  double mults_total = 0.0;
  double adder_bits = 0.0;
  // Each layer: out_dim parallel neurons; a neuron multiplexes its inputs
  // over net_time_mux rounds on ceil(in/time_mux) MAC slices, then reduces
  // through an in-input adder tree.
  const std::vector<std::size_t>& inputs = config.layer_inputs;
  for (std::size_t l = 0; l < inputs.size(); ++l) {
    const std::size_t in_dim = inputs[l];
    const std::size_t out_dim =
        (l + 1 < inputs.size()) ? inputs[l + 1] : 1;  // final logit neuron
    const std::size_t mults_per_neuron =
        (in_dim + cal.net_time_mux - 1) / cal.net_time_mux;
    mults_total += static_cast<double>(out_dim * mults_per_neuron);
    adder_bits += static_cast<double>(out_dim * (in_dim - 1)) * cal.word_bits;
  }
  est.dsp = round_count(mults_total * cal.net_dsp_per_mult);
  est.lut = round_count(mults_total * cal.net_lut_per_mult +
                        adder_bits * cal.net_lut_per_adder_bit);
  est.ff = round_count(mults_total * cal.word_bits * cal.net_ff_per_mult_bit);
  return est;
}

double utilization_pct(std::size_t used, std::size_t capacity) {
  KLINQ_REQUIRE(capacity > 0, "utilization: zero capacity");
  return 100.0 * static_cast<double>(used) / static_cast<double>(capacity);
}

}  // namespace klinq::hw
