#include "klinq/dsp/matched_filter.hpp"

#include <array>
#include <istream>
#include <ostream>

#include "klinq/common/error.hpp"
#include "klinq/nn/kernels.hpp"

namespace klinq::dsp {

matched_filter::matched_filter(std::vector<float> envelope)
    : envelope_(std::move(envelope)) {
  KLINQ_REQUIRE(!envelope_.empty(), "matched_filter: empty envelope");
}

matched_filter matched_filter::fit(const data::trace_dataset& dataset,
                                   float var_floor) {
  const auto rows0 = dataset.rows_with_label(false);
  const auto rows1 = dataset.rows_with_label(true);
  KLINQ_REQUIRE(!rows0.empty() && !rows1.empty(),
                "matched_filter::fit: need traces of both states");
  const std::size_t width = dataset.feature_width();

  // Per-sample ensemble means of each class.
  std::vector<double> mean0(width, 0.0);
  std::vector<double> mean1(width, 0.0);
  for (const std::size_t r : rows0) {
    const auto row = dataset.trace(r);
    for (std::size_t c = 0; c < width; ++c) mean0[c] += row[c];
  }
  for (const std::size_t r : rows1) {
    const auto row = dataset.trace(r);
    for (std::size_t c = 0; c < width; ++c) mean1[c] += row[c];
  }
  for (std::size_t c = 0; c < width; ++c) {
    mean0[c] /= static_cast<double>(rows0.size());
    mean1[c] /= static_cast<double>(rows1.size());
  }

  // var(T0 − T1) per sample: with independent ensembles this is
  // var(T0) + var(T1), estimated per class around its own mean.
  std::vector<double> var_sum(width, 0.0);
  for (const std::size_t r : rows0) {
    const auto row = dataset.trace(r);
    for (std::size_t c = 0; c < width; ++c) {
      const double d = row[c] - mean0[c];
      var_sum[c] += d * d / static_cast<double>(rows0.size());
    }
  }
  for (const std::size_t r : rows1) {
    const auto row = dataset.trace(r);
    for (std::size_t c = 0; c < width; ++c) {
      const double d = row[c] - mean1[c];
      var_sum[c] += d * d / static_cast<double>(rows1.size());
    }
  }

  std::vector<float> envelope(width);
  for (std::size_t c = 0; c < width; ++c) {
    const double variance = std::max<double>(var_sum[c], var_floor);
    envelope[c] = static_cast<float>((mean0[c] - mean1[c]) / variance);
  }
  return matched_filter(std::move(envelope));
}

float matched_filter::apply(std::span<const float> trace) const {
  KLINQ_REQUIRE(is_fitted(), "matched_filter::apply before fit");
  KLINQ_REQUIRE(trace.size() == envelope_.size(),
                "matched_filter::apply: trace width mismatch");
  // The 2N-wide MAC is the extraction hot spot; the dispatched kernel runs
  // it with AVX2 FMA where available (scalar tier = the seed's la::dot
  // order, pinned by KLINQ_DETERMINISTIC).
  return nn::kernels::dot(trace.data(), envelope_.data(), trace.size());
}

std::vector<float> matched_filter::apply_all(
    const data::trace_dataset& dataset) const {
  std::vector<float> outputs(dataset.size());
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    outputs[r] = apply(dataset.trace(r));
  }
  return outputs;
}

bool matched_filter::classify_as_ground(std::span<const float> trace,
                                        float threshold) const {
  return apply(trace) >= threshold;
}

float matched_filter::fit_threshold(const data::trace_dataset& dataset) const {
  double sum0 = 0.0;
  double sum1 = 0.0;
  std::size_t n0 = 0;
  std::size_t n1 = 0;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const float mf = apply(dataset.trace(r));
    if (dataset.label_state(r)) {
      sum1 += mf;
      ++n1;
    } else {
      sum0 += mf;
      ++n0;
    }
  }
  KLINQ_REQUIRE(n0 > 0 && n1 > 0, "fit_threshold: need both states");
  return static_cast<float>(0.5 * (sum0 / n0 + sum1 / n1));
}

namespace {
constexpr std::array<char, 8> kMagic = {'K', 'L', 'N', 'Q', 'M', 'F', '0', '1'};
}

void matched_filter::save(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t width = envelope_.size();
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  out.write(reinterpret_cast<const char*>(envelope_.data()),
            static_cast<std::streamsize>(envelope_.size() * sizeof(float)));
  if (!out) throw io_error("matched_filter::save: stream write failed");
}

matched_filter matched_filter::load(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw io_error("matched_filter::load: bad magic");
  }
  std::uint64_t width = 0;
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  if (!in) throw io_error("matched_filter::load: truncated header");
  KLINQ_REQUIRE(width > 0 && width < (1u << 24),
                "matched_filter::load: implausible width");
  std::vector<float> envelope(width);
  in.read(reinterpret_cast<char*>(envelope.data()),
          static_cast<std::streamsize>(width * sizeof(float)));
  if (!in) throw io_error("matched_filter::load: truncated payload");
  return matched_filter(std::move(envelope));
}

}  // namespace klinq::dsp
