#include "klinq/dsp/batch_extractor.hpp"

#include "klinq/common/error.hpp"
#include "klinq/common/thread_pool.hpp"

namespace klinq::dsp {

namespace {
/// Datasets smaller than this extract serially — pool dispatch costs more
/// than the work.
constexpr std::size_t kParallelTraceThreshold = 32;
}  // namespace

batch_extractor::batch_extractor(const feature_pipeline& pipeline)
    : pipeline_(&pipeline) {
  KLINQ_REQUIRE(pipeline.is_fitted(), "batch_extractor: unfitted pipeline");
}

void batch_extractor::extract(const data::trace_dataset& dataset,
                              la::matrix_f& out) const {
  KLINQ_REQUIRE(pipeline_ != nullptr, "batch_extractor: default-constructed");
  const std::size_t width = pipeline_->output_width();
  if (out.rows() != dataset.size() || out.cols() != width) {
    out.resize(dataset.size(), width);
  }
  if (dataset.size() < kParallelTraceThreshold) {
    extract_block(dataset, 0, dataset.size(), out, 0);
    return;
  }
  parallel_for_chunked(0, dataset.size(),
                       [&](std::size_t begin, std::size_t end) {
                         extract_block(dataset, begin, end, out, begin);
                       });
}

void batch_extractor::extract_block(const data::trace_dataset& dataset,
                                    std::size_t row_begin, std::size_t row_end,
                                    la::matrix_f& out,
                                    std::size_t out_row_begin) const {
  KLINQ_REQUIRE(pipeline_ != nullptr, "batch_extractor: default-constructed");
  KLINQ_REQUIRE(row_begin <= row_end && row_end <= dataset.size(),
                "batch_extractor: row range out of bounds");
  KLINQ_REQUIRE(out_row_begin + (row_end - row_begin) <= out.rows() &&
                    out.cols() == pipeline_->output_width(),
                "batch_extractor: output block out of bounds");
  const std::size_t n = dataset.samples_per_quadrature();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    pipeline_->extract(dataset.trace(r), n,
                       out.row(out_row_begin + (r - row_begin)));
  }
}

}  // namespace klinq::dsp
