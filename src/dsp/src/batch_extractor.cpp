#include "klinq/dsp/batch_extractor.hpp"

#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/common/thread_pool.hpp"
#include "klinq/nn/kernels.hpp"

namespace klinq::dsp {

namespace {
/// Datasets smaller than this extract serially — pool dispatch costs more
/// than the work.
constexpr std::size_t kParallelTraceThreshold = 32;
}  // namespace

batch_extractor::batch_extractor(const feature_pipeline& pipeline)
    : pipeline_(&pipeline) {
  KLINQ_REQUIRE(pipeline.is_fitted(), "batch_extractor: unfitted pipeline");
}

void batch_extractor::extract(const data::trace_dataset& dataset,
                              la::matrix_f& out) const {
  KLINQ_REQUIRE(pipeline_ != nullptr, "batch_extractor: default-constructed");
  const std::size_t width = pipeline_->output_width();
  if (out.rows() != dataset.size() || out.cols() != width) {
    out.resize(dataset.size(), width);
  }
  if (dataset.size() < kParallelTraceThreshold) {
    extract_block(dataset, 0, dataset.size(), out, 0);
    return;
  }
  parallel_for_chunked(0, dataset.size(),
                       [&](std::size_t begin, std::size_t end) {
                         extract_block(dataset, begin, end, out, begin);
                       });
}

void batch_extractor::extract_block(const data::trace_dataset& dataset,
                                    std::size_t row_begin, std::size_t row_end,
                                    la::matrix_f& out,
                                    std::size_t out_row_begin) const {
  KLINQ_REQUIRE(pipeline_ != nullptr, "batch_extractor: default-constructed");
  KLINQ_REQUIRE(row_begin <= row_end && row_end <= dataset.size(),
                "batch_extractor: row range out of bounds");
  KLINQ_REQUIRE(out_row_begin + (row_end - row_begin) <= out.rows() &&
                    out.cols() == pipeline_->output_width(),
                "batch_extractor: output block out of bounds");
  const std::size_t n = dataset.samples_per_quadrature();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    pipeline_->extract(dataset.trace(r), n,
                       out.row(out_row_begin + (r - row_begin)));
  }
}

void batch_extractor::extract_tile(const data::trace_dataset& dataset,
                                   std::size_t row_begin, std::size_t lanes,
                                   float* plane, std::size_t stride) const {
  KLINQ_REQUIRE(pipeline_ != nullptr, "batch_extractor: default-constructed");
  KLINQ_REQUIRE(row_begin + lanes <= dataset.size(),
                "batch_extractor: tile rows out of bounds");
  const std::size_t padded = nn::kernels::padded_lanes(lanes);
  KLINQ_REQUIRE(padded <= stride,
                "batch_extractor: stride too small for padded lanes");
  const std::size_t width = pipeline_->output_width();
  const std::size_t n = dataset.samples_per_quadrature();
  // One contiguous feature row per shot, scattered into the plane lanes:
  // the scatter is width stores against the ~2N-sample extraction, and the
  // per-shot values are exactly those of extract_block.
  thread_local std::vector<float> row;
  row.resize(width);
  for (std::size_t s = 0; s < lanes; ++s) {
    pipeline_->extract(dataset.trace(row_begin + s), n, row);
    for (std::size_t i = 0; i < width; ++i) plane[i * stride + s] = row[i];
  }
  for (std::size_t s = lanes; s < padded; ++s) {
    for (std::size_t i = 0; i < width; ++i) plane[i * stride + s] = 0.0f;
  }
}

}  // namespace klinq::dsp
