#include "klinq/dsp/fir.hpp"

#include <cmath>

#include "klinq/common/error.hpp"

namespace klinq::dsp {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<float> design_lowpass_fir(std::size_t taps,
                                      double cutoff_normalized) {
  KLINQ_REQUIRE(taps >= 3 && taps % 2 == 1,
                "fir design: taps must be odd and >= 3");
  KLINQ_REQUIRE(cutoff_normalized > 0.0 && cutoff_normalized < 0.5,
                "fir design: cutoff must be in (0, 0.5)");
  const double mid = static_cast<double>(taps - 1) / 2.0;
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t k = 0; k < taps; ++k) {
    const double x = static_cast<double>(k) - mid;
    const double sinc =
        x == 0.0 ? 2.0 * cutoff_normalized
                 : std::sin(2.0 * kPi * cutoff_normalized * x) / (kPi * x);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(k) /
                               static_cast<double>(taps - 1));
    h[k] = sinc * window;
    sum += h[k];
  }
  // Normalize to unit DC gain.
  std::vector<float> out(taps);
  for (std::size_t k = 0; k < taps; ++k) {
    out[k] = static_cast<float>(h[k] / sum);
  }
  return out;
}

fir_filter::fir_filter(std::vector<float> taps) : taps_(std::move(taps)) {
  KLINQ_REQUIRE(!taps_.empty() && taps_.size() % 2 == 1,
                "fir_filter: taps must be odd-length and non-empty");
}

void fir_filter::apply(std::span<const float> in, std::span<float> out) const {
  KLINQ_REQUIRE(in.size() == out.size(), "fir_filter: size mismatch");
  KLINQ_REQUIRE(in.data() != out.data(), "fir_filter: in/out must not alias");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(in.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(taps_.size() / 2);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::ptrdiff_t k = -half; k <= half; ++k) {
      const std::ptrdiff_t src = i + k;
      if (src < 0 || src >= n) continue;  // zero-padded edges
      acc += taps_[static_cast<std::size_t>(k + half)] *
             in[static_cast<std::size_t>(src)];
    }
    out[static_cast<std::size_t>(i)] = static_cast<float>(acc);
  }
}

double fir_filter::dc_gain() const noexcept {
  double sum = 0.0;
  for (const float t : taps_) sum += t;
  return sum;
}

}  // namespace klinq::dsp
