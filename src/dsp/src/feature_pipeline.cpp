#include "klinq/dsp/feature_pipeline.hpp"

#include <array>
#include <istream>
#include <ostream>

#include "klinq/common/error.hpp"
#include "klinq/dsp/batch_extractor.hpp"
#include "klinq/nn/kernels.hpp"

namespace klinq::dsp {

feature_pipeline feature_pipeline::fit(const data::trace_dataset& train,
                                       const feature_pipeline_config& config) {
  KLINQ_REQUIRE(train.size() > 1, "feature_pipeline::fit: empty training set");
  feature_pipeline pipeline;
  pipeline.config_ = config;
  pipeline.averager_ = interval_averager(config.groups_per_quadrature);
  if (config.use_matched_filter) {
    pipeline.filter_ = matched_filter::fit(train);
  }

  // Build the un-normalized feature matrix, then calibrate the normalizer.
  // Goes through the same fused extraction pass extract() runs, so the
  // calibration sees exactly the deployed arithmetic.
  const std::size_t width = pipeline.output_width();
  la::matrix_f features(train.size(), width);
  for (std::size_t r = 0; r < train.size(); ++r) {
    pipeline.extract_unnormalized(train.trace(r),
                                  train.samples_per_quadrature(),
                                  features.row(r));
  }
  pipeline.normalizer_ =
      feature_normalizer::fit(features, config.normalization);
  return pipeline;
}

void feature_pipeline::extract_unnormalized(std::span<const float> trace,
                                            std::size_t samples_per_quadrature,
                                            std::span<float> out) const {
  const std::size_t n = samples_per_quadrature;
  const std::size_t groups = averager_.groups_per_quadrature();
  KLINQ_REQUIRE(trace.size() == 2 * n,
                "feature_pipeline: trace width != 2N");
  KLINQ_REQUIRE(n >= groups, "feature_pipeline: fewer samples than groups");
  const float* envelope = nullptr;
  if (config_.use_matched_filter) {
    KLINQ_REQUIRE(filter_.input_width() == trace.size(),
                  "feature_pipeline: matched-filter width mismatch");
    envelope = filter_.envelope().data();
  }
  float mf = 0.0f;
  for (std::size_t quadrature = 0; quadrature < 2; ++quadrature) {
    const std::size_t base = quadrature * n;
    mf += nn::kernels::grouped_mean_dot(
        trace.data() + base, envelope != nullptr ? envelope + base : nullptr,
        n, groups, out.data() + quadrature * groups);
  }
  if (config_.use_matched_filter) out[out.size() - 1] = mf;
}

void feature_pipeline::extract(std::span<const float> trace,
                               std::size_t samples_per_quadrature,
                               std::span<float> out) const {
  KLINQ_REQUIRE(is_fitted(), "feature_pipeline::extract before fit");
  KLINQ_REQUIRE(out.size() == output_width(),
                "feature_pipeline::extract: bad output width");
  extract_unnormalized(trace, samples_per_quadrature, out);
  normalizer_.apply(out);
}

la::matrix_f feature_pipeline::extract_all(
    const data::trace_dataset& dataset) const {
  la::matrix_f features;
  batch_extractor(*this).extract(dataset, features);
  return features;
}

namespace {
constexpr std::array<char, 8> kMagic = {'K', 'L', 'N', 'Q', 'F', 'P', 'L', '1'};
}

void feature_pipeline::save(std::ostream& out) const {
  KLINQ_REQUIRE(is_fitted(), "feature_pipeline::save before fit");
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t groups = config_.groups_per_quadrature;
  out.write(reinterpret_cast<const char*>(&groups), sizeof(groups));
  const std::uint8_t use_mf = config_.use_matched_filter ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&use_mf), 1);
  const auto mode_raw = static_cast<std::uint8_t>(config_.normalization);
  out.write(reinterpret_cast<const char*>(&mode_raw), 1);
  if (config_.use_matched_filter) filter_.save(out);
  normalizer_.save(out);
  if (!out) throw io_error("feature_pipeline::save: stream write failed");
}

feature_pipeline feature_pipeline::load(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw io_error("feature_pipeline::load: bad magic");
  }
  std::uint64_t groups = 0;
  in.read(reinterpret_cast<char*>(&groups), sizeof(groups));
  std::uint8_t use_mf = 0;
  in.read(reinterpret_cast<char*>(&use_mf), 1);
  std::uint8_t mode_raw = 0;
  in.read(reinterpret_cast<char*>(&mode_raw), 1);
  if (!in) throw io_error("feature_pipeline::load: truncated header");
  KLINQ_REQUIRE(groups > 0 && groups < (1u << 20),
                "feature_pipeline::load: implausible group count");
  KLINQ_REQUIRE(mode_raw <= 2, "feature_pipeline::load: unknown norm mode");

  feature_pipeline pipeline;
  pipeline.config_.groups_per_quadrature = static_cast<std::size_t>(groups);
  pipeline.config_.use_matched_filter = (use_mf != 0);
  pipeline.config_.normalization = static_cast<norm_mode>(mode_raw);
  pipeline.averager_ = interval_averager(pipeline.config_.groups_per_quadrature);
  if (pipeline.config_.use_matched_filter) {
    pipeline.filter_ = matched_filter::load(in);
  }
  pipeline.normalizer_ = feature_normalizer::load(in);
  return pipeline;
}

}  // namespace klinq::dsp
