#include "klinq/dsp/averager.hpp"

#include "klinq/common/error.hpp"
#include "klinq/nn/kernels.hpp"

namespace klinq::dsp {

interval_averager::interval_averager(std::size_t groups_per_quadrature)
    : groups_(groups_per_quadrature) {
  KLINQ_REQUIRE(groups_ > 0, "interval_averager: group count must be > 0");
}

std::size_t interval_averager::group_size(std::size_t g, std::size_t n) const {
  KLINQ_REQUIRE(g < groups_, "group_size: group index out of range");
  return group_begin(g + 1, n, groups_) - group_begin(g, n, groups_);
}

void interval_averager::apply(std::span<const float> trace,
                              std::size_t samples_per_quadrature,
                              std::span<float> out) const {
  const std::size_t n = samples_per_quadrature;
  KLINQ_REQUIRE(trace.size() == 2 * n, "averager: trace width != 2N");
  KLINQ_REQUIRE(out.size() == output_width(), "averager: bad output span");
  KLINQ_REQUIRE(n >= groups_, "averager: fewer samples than groups");

  for (std::size_t quadrature = 0; quadrature < 2; ++quadrature) {
    const std::size_t in_base = quadrature * n;
    const std::size_t out_base = quadrature * groups_;
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t begin = group_begin(g, n, groups_);
      const std::size_t end = group_begin(g + 1, n, groups_);
      // Dispatched group sum: AVX2 8-lane adds where available; the scalar
      // tier keeps the seed's 4-lane accumulator order bit for bit.
      const std::size_t len = end - begin;
      const float acc = nn::kernels::sum(trace.data() + in_base + begin, len);
      out[out_base + g] = acc / static_cast<float>(len);
    }
  }
}

la::matrix_f interval_averager::apply_all(
    const data::trace_dataset& dataset) const {
  la::matrix_f features(dataset.size(), output_width());
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    apply(dataset.trace(r), dataset.samples_per_quadrature(), features.row(r));
  }
  return features;
}

}  // namespace klinq::dsp
