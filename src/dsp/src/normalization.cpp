#include "klinq/dsp/normalization.hpp"

#include <array>
#include <cmath>
#include <istream>
#include <ostream>

#include "klinq/common/error.hpp"
#include "klinq/common/math.hpp"

namespace klinq::dsp {

feature_normalizer feature_normalizer::fit(const la::matrix_f& features,
                                           norm_mode mode,
                                           double sigma_floor) {
  KLINQ_REQUIRE(features.rows() > 1, "normalizer::fit: need >= 2 rows");
  const std::size_t width = features.cols();
  feature_normalizer out;
  out.mode_ = mode;
  out.x_min_.resize(width);
  out.sigma_.resize(width);
  out.shift_exponent_.resize(width);

  for (std::size_t c = 0; c < width; ++c) {
    running_stats stats;
    float min_value = features(0, c);
    for (std::size_t r = 0; r < features.rows(); ++r) {
      const float v = features(r, c);
      stats.add(v);
      if (v < min_value) min_value = v;
    }
    const double sigma = std::max(stats.stddev(), sigma_floor);
    out.x_min_[c] = mode == norm_mode::zscore
                        ? static_cast<float>(stats.mean())
                        : min_value;
    out.sigma_[c] = static_cast<float>(sigma);
    out.shift_exponent_[c] = nearest_power_of_two_exponent(sigma);
  }
  out.rebuild_pow2_scale();
  return out;
}

void feature_normalizer::rebuild_pow2_scale() {
  // Multiplying by the exactly-representable float 2^-k matches
  // ldexp(x, -k) bit for bit (powers of two only adjust the exponent), but
  // avoids a libm call per feature on the extraction hot path.
  pow2_scale_.resize(shift_exponent_.size());
  for (std::size_t c = 0; c < shift_exponent_.size(); ++c) {
    pow2_scale_[c] = std::ldexp(1.0f, -shift_exponent_[c]);
  }
}

float feature_normalizer::effective_sigma(std::size_t feature) const {
  KLINQ_REQUIRE(feature < feature_width(),
                "effective_sigma: feature out of range");
  if (mode_ == norm_mode::pow2_shift) {
    return std::ldexp(1.0f, shift_exponent_[feature]);
  }
  return sigma_[feature];
}

void feature_normalizer::apply(std::span<float> features) const {
  KLINQ_REQUIRE(is_fitted(), "normalizer::apply before fit");
  KLINQ_REQUIRE(features.size() == feature_width(),
                "normalizer::apply: width mismatch");
  if (mode_ == norm_mode::pow2_shift) {
    // (x − x_min) · 2^-k is exactly the hardware's arithmetic shift by k.
    for (std::size_t c = 0; c < features.size(); ++c) {
      features[c] = (features[c] - x_min_[c]) * pow2_scale_[c];
    }
  } else {
    for (std::size_t c = 0; c < features.size(); ++c) {
      features[c] = (features[c] - x_min_[c]) / sigma_[c];
    }
  }
}

void feature_normalizer::apply_all(la::matrix_f& features) const {
  for (std::size_t r = 0; r < features.rows(); ++r) {
    apply(features.row(r));
  }
}

namespace {
constexpr std::array<char, 8> kMagic = {'K', 'L', 'N', 'Q', 'N', 'R', 'M', '1'};
}

void feature_normalizer::save(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t width = feature_width();
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  const auto mode_raw = static_cast<std::uint8_t>(mode_);
  out.write(reinterpret_cast<const char*>(&mode_raw), 1);
  out.write(reinterpret_cast<const char*>(x_min_.data()),
            static_cast<std::streamsize>(width * sizeof(float)));
  out.write(reinterpret_cast<const char*>(sigma_.data()),
            static_cast<std::streamsize>(width * sizeof(float)));
  out.write(reinterpret_cast<const char*>(shift_exponent_.data()),
            static_cast<std::streamsize>(width * sizeof(int)));
  if (!out) throw io_error("normalizer::save: stream write failed");
}

feature_normalizer feature_normalizer::load(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw io_error("normalizer::load: bad magic");
  std::uint64_t width = 0;
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  std::uint8_t mode_raw = 0;
  in.read(reinterpret_cast<char*>(&mode_raw), 1);
  if (!in) throw io_error("normalizer::load: truncated header");
  KLINQ_REQUIRE(width > 0 && width < (1u << 24),
                "normalizer::load: implausible width");
  KLINQ_REQUIRE(mode_raw <= 2, "normalizer::load: unknown mode");

  feature_normalizer out;
  out.mode_ = static_cast<norm_mode>(mode_raw);
  out.x_min_.resize(width);
  out.sigma_.resize(width);
  out.shift_exponent_.resize(width);
  in.read(reinterpret_cast<char*>(out.x_min_.data()),
          static_cast<std::streamsize>(width * sizeof(float)));
  in.read(reinterpret_cast<char*>(out.sigma_.data()),
          static_cast<std::streamsize>(width * sizeof(float)));
  in.read(reinterpret_cast<char*>(out.shift_exponent_.data()),
          static_cast<std::streamsize>(width * sizeof(int)));
  if (!in) throw io_error("normalizer::load: truncated payload");
  out.rebuild_pow2_scale();
  return out;
}

}  // namespace klinq::dsp
