#include "klinq/dsp/ddc.hpp"

#include <cmath>

#include "klinq/common/error.hpp"

namespace klinq::dsp {

digital_down_converter::digital_down_converter(ddc_config config)
    : config_(config),
      lowpass_(design_lowpass_fir(config.fir_taps,
                                  config.cutoff_mhz / config.sample_rate_mhz)) {
  KLINQ_REQUIRE(config_.sample_rate_mhz > 0, "ddc: bad sample rate");
  KLINQ_REQUIRE(config_.cutoff_mhz > 0 &&
                    config_.cutoff_mhz < config_.sample_rate_mhz / 2,
                "ddc: cutoff must be below Nyquist");
}

std::vector<float> digital_down_converter::convert(
    std::span<const float> feedline, std::size_t samples_per_quadrature) const {
  const std::size_t n = samples_per_quadrature;
  KLINQ_REQUIRE(feedline.size() == 2 * n, "ddc: feedline width != 2N");

  // Complex mix: (I + jQ) · e^{−jωk}.
  const double omega = 2.0 * 3.14159265358979323846 * config_.if_freq_mhz /
                       config_.sample_rate_mhz;
  std::vector<float> mixed_i(n);
  std::vector<float> mixed_q(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle = omega * static_cast<double>(k);
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    const double i_val = feedline[k];
    const double q_val = feedline[n + k];
    mixed_i[k] = static_cast<float>(c * i_val + s * q_val);
    mixed_q[k] = static_cast<float>(-s * i_val + c * q_val);
  }

  // Low-pass both quadratures to reject neighbouring tones.
  std::vector<float> out(2 * n);
  lowpass_.apply(mixed_i, std::span<float>(out.data(), n));
  lowpass_.apply(mixed_q, std::span<float>(out.data() + n, n));
  return out;
}

data::trace_dataset digital_down_converter::convert_all(
    const data::trace_dataset& feedline) const {
  data::trace_dataset out(feedline.size(), feedline.samples_per_quadrature());
  out.resize_traces(feedline.size());
  for (std::size_t r = 0; r < feedline.size(); ++r) {
    const auto channel =
        convert(feedline.trace(r), feedline.samples_per_quadrature());
    out.set_trace(r, channel, feedline.label_state(r),
                  feedline.permutations()[r]);
  }
  return out;
}

}  // namespace klinq::dsp
