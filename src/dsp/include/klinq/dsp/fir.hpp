// FIR filtering: windowed-sinc low-pass design and linear convolution.
//
// Substrate for the digital down-converter that channelizes the
// frequency-multiplexed feedline (the demodulation step HERQULES requires
// and KLiNQ's per-qubit analog channels avoid — paper §I challenge 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace klinq::dsp {

/// Designs a Hamming-windowed sinc low-pass filter.
/// `cutoff_normalized` is the -6 dB cutoff as a fraction of the sample rate
/// (0 < cutoff < 0.5). `taps` must be odd so the filter has integer group
/// delay, which apply() compensates.
std::vector<float> design_lowpass_fir(std::size_t taps,
                                      double cutoff_normalized);

class fir_filter {
 public:
  explicit fir_filter(std::vector<float> taps);

  std::size_t tap_count() const noexcept { return taps_.size(); }
  std::span<const float> taps() const noexcept {
    return std::span<const float>(taps_);
  }

  /// Zero-phase-ish filtering: linear convolution with zero-padded edges,
  /// output aligned by the (taps−1)/2 group delay. in/out same length;
  /// out must not alias in.
  void apply(std::span<const float> in, std::span<float> out) const;

  /// DC gain (sum of taps) — 1.0 for a normalized low-pass.
  double dc_gain() const noexcept;

 private:
  std::vector<float> taps_;
};

}  // namespace klinq::dsp
