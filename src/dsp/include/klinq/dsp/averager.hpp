// Interval averaging with dynamic regrouping (paper §III-B-1 / §III-D).
//
// The student networks have a *fixed* input size: G averaged values per
// quadrature (FNN-A: G = 15, FNN-B: G = 100 for the 1 µs trace). When the
// trace length changes, the number of samples averaged per group adapts so
// the output stays G — group g covers samples [gN/G, (g+1)N/G).
//
// At N = 500: G = 15 ⇒ ~33-sample (≈64 ns) intervals; G = 100 ⇒ 5-sample
// (10 ns) intervals, matching the paper's two presets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/linalg/matrix.hpp"

namespace klinq::dsp {

class interval_averager {
 public:
  /// `groups_per_quadrature` is G; output width is 2G (I block then Q block).
  explicit interval_averager(std::size_t groups_per_quadrature);

  std::size_t groups_per_quadrature() const noexcept { return groups_; }
  std::size_t output_width() const noexcept { return 2 * groups_; }

  /// Group boundary: first sample index of group g for an N-sample trace.
  /// g may equal G, giving N (the end sentinel).
  static std::size_t group_begin(std::size_t g, std::size_t n,
                                 std::size_t groups) noexcept {
    return g * n / groups;
  }

  /// Samples in group g; never zero when N >= G.
  std::size_t group_size(std::size_t g, std::size_t n) const;

  /// Averages one flattened [I|Q] trace of N complex samples into
  /// `out` (2G entries). Requires N >= G.
  void apply(std::span<const float> trace, std::size_t samples_per_quadrature,
             std::span<float> out) const;

  /// Averages every row of a dataset into a (n × 2G) feature matrix.
  la::matrix_f apply_all(const data::trace_dataset& dataset) const;

 private:
  std::size_t groups_;
};

}  // namespace klinq::dsp
