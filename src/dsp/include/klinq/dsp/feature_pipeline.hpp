// Student-network input pipeline (paper Fig. 2): averaged I/Q + MF feature.
//
// extract() maps one flattened [I|Q] trace to the student input vector
//   [ norm(avg I_0..G−1), norm(avg Q_0..G−1), norm(MF(trace)) ]
// of width 2G + 1 (31 for FNN-A, 201 for FNN-B at G = 15 / 100).
//
// fit() calibrates, in order: the MF envelope on raw labelled traces, then
// the normalizer over the stacked [averaged | MF] features. The normalizer
// defaults to power-of-two σ so float training sees exactly the arithmetic
// the fixed-point hardware implements.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/dsp/averager.hpp"
#include "klinq/dsp/matched_filter.hpp"
#include "klinq/dsp/normalization.hpp"

namespace klinq::dsp {

struct feature_pipeline_config {
  /// Averaging groups per quadrature (G); student input width is 2G + 1.
  std::size_t groups_per_quadrature = 15;
  /// Include the matched-filter scalar (paper always does; the ablation
  /// bench switches it off to quantify its contribution).
  bool use_matched_filter = true;
  norm_mode normalization = norm_mode::pow2_shift;
};

class feature_pipeline {
 public:
  feature_pipeline() = default;

  /// Calibrates MF + normalizer on a labelled training set.
  static feature_pipeline fit(const data::trace_dataset& train,
                              const feature_pipeline_config& config);

  bool is_fitted() const noexcept { return normalizer_.is_fitted(); }

  const feature_pipeline_config& config() const noexcept { return config_; }
  std::size_t output_width() const noexcept {
    return averager_.output_width() + (config_.use_matched_filter ? 1 : 0);
  }

  const interval_averager& averager() const noexcept { return averager_; }
  const matched_filter& filter() const noexcept { return filter_; }
  const feature_normalizer& normalizer() const noexcept { return normalizer_; }

  /// Extracts the normalized student input for one trace.
  void extract(std::span<const float> trace,
               std::size_t samples_per_quadrature,
               std::span<float> out) const;

  /// Extracts features for every row of a dataset → (n × output_width).
  /// Runs through batch_extractor (thread-pool-parallel over trace blocks).
  la::matrix_f extract_all(const data::trace_dataset& dataset) const;

  void save(std::ostream& out) const;
  static feature_pipeline load(std::istream& in);

 private:
  /// The un-normalized feature row: fused single-pass grouped means + MF
  /// partials per quadrature (one stream over the trace instead of an
  /// averager pass plus an MF pass). Shared by fit() and extract() so the
  /// normalizer is calibrated on exactly the values extract() produces.
  void extract_unnormalized(std::span<const float> trace,
                            std::size_t samples_per_quadrature,
                            std::span<float> out) const;

  feature_pipeline_config config_{};
  interval_averager averager_{15};
  matched_filter filter_;
  feature_normalizer normalizer_;
};

}  // namespace klinq::dsp
