// Matched filter for qubit-state discrimination (paper §III-B-2).
//
// The envelope is fit from labelled training traces as
//     MF[n] = mean(T0[n] − T1[n]) / var(T0[n] − T1[n])
// per flattened sample n (I and Q blocks alike), where T0/T1 are the
// ground-/excited-state trace ensembles. Inference applies the envelope as a
// dot product, yielding one scalar feature that maximally separates the two
// state ensembles under per-sample Gaussian noise.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "klinq/data/trace_dataset.hpp"

namespace klinq::dsp {

class matched_filter {
 public:
  matched_filter() = default;

  /// Constructs from a precomputed envelope (deserialization, tests).
  explicit matched_filter(std::vector<float> envelope);

  /// Fits the envelope from a labelled dataset; requires at least one trace
  /// of each state. `var_floor` guards against zero-variance samples.
  static matched_filter fit(const data::trace_dataset& dataset,
                            float var_floor = 1e-12f);

  bool is_fitted() const noexcept { return !envelope_.empty(); }
  std::size_t input_width() const noexcept { return envelope_.size(); }
  std::span<const float> envelope() const noexcept {
    return std::span<const float>(envelope_);
  }

  /// Dot product of the envelope with one flattened trace.
  float apply(std::span<const float> trace) const;

  /// Applies to every row of a dataset.
  std::vector<float> apply_all(const data::trace_dataset& dataset) const;

  /// Classifies by thresholding the MF output: output >= threshold ⇒ state 0
  /// (the envelope points from |1⟩ toward |0⟩ by construction).
  bool classify_as_ground(std::span<const float> trace,
                          float threshold) const;

  /// Midpoint between the two class means of the MF output on a dataset —
  /// the natural operating threshold.
  float fit_threshold(const data::trace_dataset& dataset) const;

  void save(std::ostream& out) const;
  static matched_filter load(std::istream& in);

 private:
  std::vector<float> envelope_;
};

}  // namespace klinq::dsp
