// Digital down-conversion: channelize one qubit's tone out of a
// frequency-multiplexed feedline trace.
//
// y(t) = LPF[ (I(t) + jQ(t)) · e^{−jω_q t} ] — complex mix to baseband,
// then low-pass filtering to reject the other qubits' tones. This is the
// demodulation step the paper's §I criticizes HERQULES for needing; KLiNQ's
// per-qubit channels arrive already down-converted. The module lets the
// extension bench quantify what digital channelization costs relative to
// the ideal per-qubit channel.
#pragma once

#include <span>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/dsp/fir.hpp"

namespace klinq::dsp {

struct ddc_config {
  /// Tone frequency to shift to baseband (MHz).
  double if_freq_mhz = 0.0;
  /// Low-pass taps (odd). 201 taps at 500 MS/s gives a ≈8 MHz transition —
  /// enough to separate the preset's 15 MHz-spaced tones.
  std::size_t fir_taps = 201;
  /// Low-pass cutoff (MHz).
  double cutoff_mhz = 7.0;
  /// ADC sample rate (MHz); the library default is the paper's 500 MS/s.
  double sample_rate_mhz = 500.0;
};

class digital_down_converter {
 public:
  explicit digital_down_converter(ddc_config config);

  const ddc_config& config() const noexcept { return config_; }

  /// Converts one flattened [I|Q] feedline trace of N complex samples into
  /// the baseband [I|Q] channel trace at the configured tone.
  std::vector<float> convert(std::span<const float> feedline,
                             std::size_t samples_per_quadrature) const;

  /// Channelizes every row of a feedline dataset (labels preserved).
  data::trace_dataset convert_all(const data::trace_dataset& feedline) const;

 private:
  ddc_config config_;
  fir_filter lowpass_;
};

}  // namespace klinq::dsp
