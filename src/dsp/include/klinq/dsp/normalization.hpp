// Feature normalization with the hardware's power-of-two trick (paper §IV).
//
// The FPGA normalizes as (x − x_min) / σ_x, but replaces the division by a
// barrel shift after approximating σ_x by the nearest power of two — σ and
// x_min come from training-time calibration. To keep training and hardware
// numerics aligned, the *float* pipeline can apply the identical
// power-of-two σ (mode::pow2_shift, the default); mode::exact keeps the
// true σ for comparison studies.
//
// mode::zscore centres on the per-feature *mean* instead of the minimum
// (classic standardization). The min-offset produces all-positive inputs
// whose common DC component badly conditions large-input networks — fine
// for the 31/201-input students the hardware runs, but the software-side
// teacher (1000 raw inputs) needs the zero-mean form to train at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "klinq/linalg/matrix.hpp"

namespace klinq::dsp {

enum class norm_mode : std::uint8_t { exact = 0, pow2_shift = 1, zscore = 2 };

class feature_normalizer {
 public:
  feature_normalizer() = default;

  /// Fits per-feature x_min and σ over the rows of `features`.
  /// `sigma_floor` avoids division blow-up on constant features.
  static feature_normalizer fit(const la::matrix_f& features,
                                norm_mode mode = norm_mode::pow2_shift,
                                double sigma_floor = 1e-9);

  bool is_fitted() const noexcept { return !x_min_.empty(); }
  std::size_t feature_width() const noexcept { return x_min_.size(); }
  norm_mode mode() const noexcept { return mode_; }

  /// Per-feature offset subtracted before scaling: the training-set minimum
  /// in exact/pow2_shift modes (the paper's formula), the mean in zscore.
  std::span<const float> x_min() const noexcept {
    return std::span<const float>(x_min_);
  }
  std::span<const float> sigma() const noexcept {
    return std::span<const float>(sigma_);
  }
  /// Shift exponent k per feature: the hardware computes (x − x_min) >> k
  /// (negative k means a left shift), with 2^k ≈ σ.
  std::span<const int> shift_exponents() const noexcept {
    return std::span<const int>(shift_exponent_);
  }

  /// Effective divisor actually applied (2^k in pow2 mode, σ in exact mode).
  float effective_sigma(std::size_t feature) const;

  /// In-place normalization of one feature row.
  void apply(std::span<float> features) const;

  /// Normalizes every row of a matrix in place.
  void apply_all(la::matrix_f& features) const;

  void save(std::ostream& out) const;
  static feature_normalizer load(std::istream& in);

 private:
  /// Recomputes the cached 2^-k multipliers from shift_exponent_ (derived
  /// state; not serialized).
  void rebuild_pow2_scale();

  std::vector<float> x_min_;
  std::vector<float> sigma_;
  std::vector<int> shift_exponent_;
  std::vector<float> pow2_scale_;
  norm_mode mode_ = norm_mode::pow2_shift;
};

}  // namespace klinq::dsp
