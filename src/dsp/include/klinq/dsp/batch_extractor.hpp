// Batched feature extraction: the dataset-scale front of the inference
// engine.
//
// Runs feature_pipeline::extract over a block of traces into a preallocated
// feature matrix, parallelized over the global thread pool. Each trace's
// features are written directly into its output row, so steady-state
// extraction performs no per-shot heap allocation; repeated extract() calls
// into the same matrix reuse its storage.
#pragma once

#include <cstddef>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/dsp/feature_pipeline.hpp"
#include "klinq/linalg/matrix.hpp"

namespace klinq::dsp {

class batch_extractor {
 public:
  batch_extractor() = default;

  /// Non-owning: `pipeline` must be fitted and outlive the extractor.
  explicit batch_extractor(const feature_pipeline& pipeline);

  const feature_pipeline& pipeline() const noexcept { return *pipeline_; }

  /// Extracts every trace of `dataset` into `out`, resized to
  /// (dataset.size() × output_width). Blocks of traces run in parallel on
  /// the global thread pool; results are independent of worker count.
  void extract(const data::trace_dataset& dataset, la::matrix_f& out) const;

  /// Serial extraction of dataset rows [row_begin, row_end) into out rows
  /// [out_row_begin, out_row_begin + count). `out` must already be sized;
  /// no allocation. Building block for custom sharding.
  void extract_block(const data::trace_dataset& dataset, std::size_t row_begin,
                     std::size_t row_end, la::matrix_f& out,
                     std::size_t out_row_begin = 0) const;

  /// Fused-path tile producer: extracts dataset rows
  /// [row_begin, row_begin + lanes) straight into a feature-major plane —
  /// feature i of shot s at plane[i * stride + s] — the layout the float
  /// plane kernels (klinq/nn/kernels.hpp) consume as the first-layer GEMM
  /// panel, so no full feature matrix is ever materialized. Pad lanes
  /// [lanes, nn::kernels::padded_lanes(lanes)) are zero-filled; requires
  /// padded_lanes(lanes) <= stride. Per-shot feature values are identical to
  /// extract()/extract_block — only the layout differs.
  void extract_tile(const data::trace_dataset& dataset, std::size_t row_begin,
                    std::size_t lanes, float* plane, std::size_t stride) const;

 private:
  const feature_pipeline* pipeline_ = nullptr;
};

}  // namespace klinq::dsp
