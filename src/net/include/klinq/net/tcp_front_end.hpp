// klinq::net::tcp_front_end — the network-facing serving front end.
//
// Multiplexes many concurrent TCP client connections into one
// readout_server's submit/ticket machinery, designed around failure:
// hostile clients, partial frames, disconnects mid-request, and saturation
// are treated as the normal case.
//
// Threading (three threads, all owned by the front end):
//
//   acceptor   blocks in accept(); enforces the connection cap (over-cap
//              connections get a best-effort busy frame and are closed
//              immediately) and hands accepted fds to the poll loop.
//   poll loop  owns every connection socket: readiness-driven reads/writes
//              (non-blocking fds, TCP_NODELAY), frame parsing, admission
//              control, submission into the server, idle/slow-loris
//              enforcement, and eviction. No other thread touches a socket.
//   completion drains the doorbell queue fed by the server's on_complete
//              callback: claims each finished ticket with wait(), encodes
//              the response into the owning connection's write queue (or
//              drops it, counted, when the client is gone) and wakes the
//              poll loop.
//
// Locking: `state_mutex_` guards connections and the ticket map;
// `completion_mutex_` guards only the doorbell queue. The poll loop holds
// state_mutex_ across try_submit + ticket registration, and the on_complete
// doorbell (which may fire inline during try_submit on a workerless pool)
// touches only the completion queue — so the completion thread, which takes
// state_mutex_ after popping, can never observe an unregistered ticket.
// Lock order is state → completion and state → server everywhere; the
// completion side never nests into state-holding server calls it didn't
// originate.
//
// Robustness contracts (each has a test in tests/test_net.cpp and a chaos
// scenario in `klinq_serve --listen --chaos`):
//   * Admission: per-connection inflight and payload-byte quotas, a
//     server-wide inflight budget with a reserve only the feedback lane may
//     use, all on top of the serve layer's own max_inflight. Rejection is an
//     explicit retriable `busy` frame — never an unbounded queue.
//   * Malformed frames (bad magic/CRC/version/type, oversize length,
//     undecodable payload) kill exactly the offending connection with a
//     typed error frame; the server and every other connection keep going.
//   * Slow clients: read-idle and write-stall deadlines plus a bounded
//     write queue; a slow-loris connection is evicted, its tickets
//     reconciled like a disconnect.
//   * Disconnect reconciliation: every in-flight ticket of a dead
//     connection is cancelled through the server's cancel() path and its
//     result claimed and dropped (counted) by the completion thread —
//     tickets are never leaked, so ticket accounting reconciles exactly.
//   * Graceful drain: stop accepting → shed new requests (busy/draining) →
//     resolve every in-flight ticket → flush write queues → goodbye frames
//     → close. Bounded by drain_timeout_seconds, then force-cancel.
//
// Fault sites compiled into this path: net.accept, net.read, net.write,
// net.decode, net.complete (see klinq/fault/fault.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "klinq/obs/metrics.hpp"
#include "klinq/obs/trace.hpp"
#include "klinq/serve/readout_server.hpp"

namespace klinq::net {

struct front_end_config {
  /// Listen address; loopback by default (tests, benches, the smoke tool).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Listen backlog handed to ::listen.
  int listen_backlog = 64;
  /// Connection cap: accepts beyond it are answered with a busy frame and
  /// closed. Must be positive.
  std::size_t max_connections = 64;
  /// Per-connection inflight request quota. Must be positive.
  std::size_t max_inflight_per_connection = 16;
  /// Per-connection inflight payload byte budget (the decoded trace bytes a
  /// connection may have unresolved at once). Must be positive.
  std::size_t max_inflight_bytes_per_connection = std::size_t{64} << 20;
  /// Server-wide network inflight budget (across all connections), on top
  /// of the serve layer's own max_inflight. Must be positive.
  std::size_t max_inflight = 256;
  /// Slots of max_inflight only feedback-lane requests may use: bulk is
  /// admitted while net inflight < max_inflight - feedback_reserve, so a
  /// saturating bulk client cannot starve the feedback lane's admission.
  /// Must be < max_inflight.
  std::size_t feedback_reserve = 0;
  /// Evict a connection that has an unfinished frame (or nothing at all)
  /// and sends no bytes for this long — the slow-loris defense. 0 disables.
  double read_idle_seconds = 0.0;
  /// Evict a connection whose write queue makes no progress for this long
  /// (a reader that stopped reading). 0 disables.
  double write_stall_seconds = 0.0;
  /// Bound on a connection's queued unsent bytes; exceeding it evicts (a
  /// client not draining responses must not grow server memory). Must be
  /// positive.
  std::size_t max_write_queue_bytes = std::size_t{16} << 20;
  /// Frames whose header announces a payload above this are answered with
  /// an oversize error and the connection closed. Must be positive.
  std::size_t max_frame_payload = std::size_t{64} << 20;
  /// shutdown(): how long to wait for in-flight tickets and write queues
  /// before force-cancelling. Must be finite and non-negative.
  double drain_timeout_seconds = 5.0;
  /// Poll readiness timeout (granularity of the idle/stall deadlines).
  /// Must be positive.
  double poll_interval_seconds = 0.05;
  /// Metrics backend (borrowed; must outlive the front end). Null gives the
  /// front end a private registry.
  obs::metric_registry* metrics = nullptr;
  /// Distributed-tracing sink (borrowed; must outlive the front end). When
  /// set and armed, requests arriving with a v2 trace context get
  /// net.read/net.decode/net.admit/net.write spans recorded here (same
  /// trace_clock_us timeline as the serve spans). Null or disarmed: the
  /// per-frame cost is one relaxed load.
  obs::trace_ring* traces = nullptr;

  /// Throws invalid_argument_error on any inconsistent field.
  void validate() const;

  /// `base` with environment overrides applied: KLINQ_LISTEN ("host:port"
  /// or a bare port) sets bind_address/port, and each KLINQ_NET_* variable
  /// (MAX_CONNECTIONS, MAX_INFLIGHT, MAX_INFLIGHT_PER_CONNECTION,
  /// MAX_INFLIGHT_BYTES_PER_CONNECTION, FEEDBACK_RESERVE, READ_IDLE_SECONDS,
  /// WRITE_STALL_SECONDS, MAX_WRITE_QUEUE_BYTES, MAX_FRAME_PAYLOAD,
  /// DRAIN_TIMEOUT_SECONDS) overrides the matching field. Throws
  /// invalid_argument_error on an unparsable value, naming the variable.
  static front_end_config from_env(front_end_config base);
  /// from_env applied to a default-constructed config.
  static front_end_config from_env();
};

/// Point-in-time counters (a view over the labeled metric cells).
struct front_end_stats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over the connection cap
  std::uint64_t connections_closed = 0;    // all removals, evictions included
  std::uint64_t connections_evicted = 0;   // slow-loris / write-stall / quota
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t results_dropped = 0;  // completions for departed clients
  std::uint64_t cancels_received = 0;
  std::uint64_t pings_received = 0;
  std::uint64_t pongs_sent = 0;
  std::size_t open_connections = 0;
  std::size_t inflight = 0;

  /// Throws invalid_argument_error when the counters are mutually
  /// inconsistent — the reconciliation check the chaos harness runs.
  void validate() const;
};

/// Point-in-time view of one live connection (the /statusz table).
struct connection_info {
  std::uint64_t id = 0;
  /// Negotiated protocol version (0 until the first frame arrives).
  std::uint8_t protocol_version = 0;
  std::size_t inflight = 0;
  std::size_t inflight_bytes = 0;
  std::size_t write_queue_bytes = 0;
  /// Requests admitted on this connection, by lane.
  std::uint64_t admitted_bulk = 0;
  std::uint64_t admitted_feedback = 0;
  double age_seconds = 0.0;
  /// Seconds since the last byte arrived from the client.
  double idle_seconds = 0.0;
  bool closing = false;
};

class tcp_front_end {
 public:
  /// Binds, listens, installs the server's completion doorbell, and starts
  /// the three service threads. The server is borrowed and must outlive the
  /// front end; the front end must be its only ticket consumer while
  /// running (it installs server.set_on_complete, so the server must have
  /// no unresolved tickets and no other on_complete user).
  tcp_front_end(serve::readout_server& server, front_end_config config = {});

  /// shutdown() if still serving.
  ~tcp_front_end();

  tcp_front_end(const tcp_front_end&) = delete;
  tcp_front_end& operator=(const tcp_front_end&) = delete;

  /// The bound TCP port (the ephemeral one when config.port was 0).
  std::uint16_t port() const noexcept;

  /// Graceful drain and stop (idempotent): stop accepting, shed new
  /// requests, resolve every in-flight ticket (bounded by
  /// drain_timeout_seconds, then force-cancel), flush write queues, send
  /// goodbye frames, close every connection, join the threads, and uninstall
  /// the server doorbell.
  void shutdown();

  front_end_stats stats() const;

  /// Live per-connection table (unordered); the /statusz data source.
  std::vector<connection_info> connections() const;

  /// True while shutdown() is shedding new work (the /healthz drain signal).
  bool draining() const noexcept;

  /// The metric registry backing the klinq_net_* families.
  const obs::metric_registry& metrics() const noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace klinq::net
