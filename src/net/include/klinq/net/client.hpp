// klinq::net::client — minimal blocking client for the klinq wire protocol.
//
// Built for tests, the chaos smoke tool, and loopback benches, not as a
// production SDK: one socket, synchronous sends, and a read_frame() that
// blocks (bounded by a receive timeout) until one complete frame arrives.
// The raw send_bytes()/fd() escape hatches exist so the protocol fuzz tests
// can write arbitrary garbage and half-frames through a real connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "klinq/net/frame.hpp"

namespace klinq::net {

/// One received frame: the decoded header plus its raw payload bytes.
struct client_frame {
  frame_header header;
  std::vector<std::uint8_t> payload;
};

class client {
 public:
  /// Connects (blocking) to the front end. Throws invalid_argument_error on
  /// connection failure.
  client(const std::string& host, std::uint16_t port);
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;
  client(client&& other) noexcept;
  client& operator=(client&& other) noexcept;

  /// Sends a request frame; returns the auto-assigned request id.
  std::uint64_t send_request(
      const request_info& info, const data::trace_dataset& traces,
      serve::lane_class lane = serve::lane_class::bulk);
  /// Sends a request frame with an explicit id (duplicate-id tests).
  void send_request_with_id(std::uint64_t request_id, const request_info& info,
                            const data::trace_dataset& traces,
                            serve::lane_class lane = serve::lane_class::bulk);
  void send_cancel(std::uint64_t request_id);
  void send_ping(std::uint64_t request_id);
  void send_goodbye();

  /// Raw bytes straight onto the socket — the fuzz tests' hostile-client
  /// primitive.
  void send_bytes(const std::uint8_t* data, std::size_t size);
  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    send_bytes(bytes.data(), bytes.size());
  }

  /// Blocks for the next complete frame. nullopt when the peer closed the
  /// connection or `timeout_seconds` elapsed first. Throws on a malformed
  /// header (the server never sends one).
  std::optional<client_frame> read_frame(double timeout_seconds = 5.0);

  /// Next reply (response, busy, or error) for `request_id`, skipping
  /// pongs/goodbyes. Replies for other ids encountered along the way are
  /// stashed and handed out by a later read_reply for their id, so replies
  /// may be collected in any order. nullopt on close/timeout.
  std::optional<client_frame> read_reply(std::uint64_t request_id,
                                         double timeout_seconds = 5.0);

  int fd() const noexcept { return fd_; }
  bool is_open() const noexcept { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> read_buffer_;
  std::vector<client_frame> stashed_replies_;  // out-of-order read_reply
};

}  // namespace klinq::net
