// klinq::net::client — minimal blocking client for the klinq wire protocol.
//
// Built for tests, the chaos smoke tool, and loopback benches, not as a
// production SDK: one socket, synchronous sends, and a read_frame() that
// blocks (bounded by a receive timeout) until one complete frame arrives.
// The raw send_bytes()/fd() escape hatches exist so the protocol fuzz tests
// can write arbitrary garbage and half-frames through a real connection.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "klinq/net/frame.hpp"
#include "klinq/obs/trace.hpp"

namespace klinq::net {

/// One received frame: the decoded header plus its raw payload bytes.
struct client_frame {
  frame_header header;
  std::vector<std::uint8_t> payload;
};

class client {
 public:
  /// Connects (blocking) to the front end. Throws invalid_argument_error on
  /// connection failure.
  client(const std::string& host, std::uint16_t port);
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;
  client(client&& other) noexcept;
  client& operator=(client&& other) noexcept;

  /// Arms end-to-end wire tracing: every sampled send_request stamps a fresh
  /// trace_id + a client RTT span id into the frame's v2 trace context, and
  /// the RTT span (category "client", covering send → reply) is recorded
  /// into `ring` when the reply arrives. `ring` is borrowed and must outlive
  /// the client; pass sample_rate in [0, 1] (deterministic head sampling).
  void enable_tracing(obs::trace_ring* ring, double sample_rate = 1.0);

  /// Arms keepalive: while blocked in read_frame()/read_reply(), a ping is
  /// sent every `interval_seconds` of wire silence, and a pong that misses
  /// its `timeout_seconds` deadline fails every pending request — the read
  /// throws io_error and the connection is closed (a half-dead server must
  /// not hold callers hostage until their own timeout). Keepalive pings use
  /// a reserved id space (top bit set) and their pongs are consumed
  /// internally, never surfaced to read_frame callers.
  void enable_keepalive(double interval_seconds, double timeout_seconds);

  /// Sends a request frame; returns the auto-assigned request id.
  std::uint64_t send_request(
      const request_info& info, const data::trace_dataset& traces,
      serve::lane_class lane = serve::lane_class::bulk);
  /// Sends a request frame with an explicit id (duplicate-id tests).
  void send_request_with_id(std::uint64_t request_id, const request_info& info,
                            const data::trace_dataset& traces,
                            serve::lane_class lane = serve::lane_class::bulk);
  void send_cancel(std::uint64_t request_id);
  void send_ping(std::uint64_t request_id);
  void send_goodbye();

  /// Raw bytes straight onto the socket — the fuzz tests' hostile-client
  /// primitive.
  void send_bytes(const std::uint8_t* data, std::size_t size);
  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    send_bytes(bytes.data(), bytes.size());
  }

  /// Blocks for the next complete frame. nullopt when the peer closed the
  /// connection or `timeout_seconds` elapsed first. Throws on a malformed
  /// header (the server never sends one).
  std::optional<client_frame> read_frame(double timeout_seconds = 5.0);

  /// Next reply (response, busy, or error) for `request_id`, skipping
  /// pongs/goodbyes. Replies for other ids encountered along the way are
  /// stashed and handed out by a later read_reply for their id, so replies
  /// may be collected in any order. nullopt on close/timeout.
  std::optional<client_frame> read_reply(std::uint64_t request_id,
                                         double timeout_seconds = 5.0);

  int fd() const noexcept { return fd_; }
  bool is_open() const noexcept { return fd_ >= 0; }
  void close();

 private:
  struct pending_trace {
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;   // the RTT span, parent of the server spans
    std::uint64_t start_us = 0;  // trace_clock_us() at send
  };

  void maybe_record_rtt(const client_frame& frame);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> read_buffer_;
  std::vector<client_frame> stashed_replies_;  // out-of-order read_reply

  // Wire tracing (enable_tracing).
  obs::trace_ring* traces_ = nullptr;  // borrowed
  obs::trace_sampler sampler_{1.0};
  std::vector<pending_trace> pending_traces_;

  // Keepalive (enable_keepalive). awaiting_pong_id_ == 0 means no ping is
  // outstanding.
  double keepalive_interval_seconds_ = 0.0;
  double keepalive_timeout_seconds_ = 0.0;
  std::uint64_t next_ping_id_ = 0;
  std::uint64_t awaiting_pong_id_ = 0;
  std::chrono::steady_clock::time_point last_activity_at_{};
  std::chrono::steady_clock::time_point pong_deadline_{};
};

}  // namespace klinq::net
