// Live introspection plane: the standard /metrics, /healthz, /statusz and
// /tracez handlers wired onto an obs::http_server.
//
// The HTTP server itself lives in obs (it cannot see net); this module is
// the glue that knows about the TCP front end's connection table and drain
// state, the flight recorder, and the trace ring, and renders them for a
// human (or a Prometheus scraper) mid-incident:
//
//   /metrics  Prometheus text exposition of the registry snapshot
//             (lint-clean under obs::lint_prometheus_text).
//   /healthz  200 "ok" when serving; 503 naming every failing probe when
//             draining, degraded, or any caller-supplied probe fires.
//   /statusz  Front-end counters, the live per-connection table (inflight,
//             bytes, lane mix, age, idle), flight-recorder anomalies and
//             slowest requests, plus caller-supplied sections.
//   /tracez   Recently completed traces from the ring, spans indented under
//             their trace with offsets on the shared microsecond timeline.
//
// All handlers are read-only and allocate only while rendering; they run on
// the HTTP server's poll thread, so every data source they touch must be
// internally synchronized (all of the defaults are).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "klinq/obs/flight_recorder.hpp"
#include "klinq/obs/http.hpp"
#include "klinq/obs/metrics.hpp"
#include "klinq/obs/trace.hpp"
#include "klinq/net/tcp_front_end.hpp"

namespace klinq::net {

struct introspection_config {
  /// Registry behind /metrics and the /statusz counter dump. Required; all
  /// pointers are borrowed and must outlive the http_server.
  obs::metric_registry* metrics = nullptr;
  /// Front end: /healthz drain probe + /statusz connection table. Optional.
  tcp_front_end* front_end = nullptr;
  /// Trace ring behind /tracez. Optional (endpoint reports "tracing off").
  obs::trace_ring* traces = nullptr;
  /// Flight recorder for the /statusz slowest/anomaly section. Optional.
  const obs::flight_recorder* recorder = nullptr;
  /// Named health probes; a probe returning true marks the process
  /// UNHEALTHY and its name is listed in the 503 body (e.g. {"degraded",
  /// [&] { return registry_degraded(reg); }}).
  std::vector<std::pair<std::string, std::function<bool()>>> unhealthy_when;
  /// Extra named /statusz sections appended after the built-ins (e.g. the
  /// model-registry version table).
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
};

/// Installs the four standard handlers on `http`. Throws
/// invalid_argument_error when config.metrics is null.
void install_introspection_handlers(obs::http_server& http,
                                    introspection_config config);

}  // namespace klinq::net
