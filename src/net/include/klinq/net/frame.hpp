// klinq::net wire protocol — length-prefixed binary frames.
//
// Every frame is a fixed 24-byte header followed by `payload_size` bytes of
// type-specific payload. The header carries a CRC32 over its first 20 bytes,
// so a desynced or corrupted stream is detected at the next frame boundary
// instead of being misparsed into a garbage payload length; payload bytes are
// not checksummed (TCP already covers transport corruption — the header CRC
// exists to catch *framing* bugs and hostile bytes, where the cost of
// trusting a bad length field is unbounded memory).
//
//   offset  size  field
//        0     4  magic        0x514E4C4B ("KLNQ" little-endian)
//        4     1  version      kProtocolVersion (currently 2; 1 accepted)
//        5     1  type         frame_type
//        6     1  lane         serve::lane_class (requests; 0 elsewhere)
//        7     1  flags        v2: kTraceFlag on request frames; v1: must be 0
//        8     8  request_id   client-chosen correlation id (echoed back)
//       16     4  payload_size bytes following the header
//       20     4  crc32        IEEE CRC32 over header bytes [0, 20)
//
// Version negotiation is per connection: the server accepts both v1 and v2
// frames and answers each connection with the version of the first frame it
// received from it, so a v1 client never sees a v2 byte. The only v2
// addition is the flags byte (reserved-and-zero under v1): kTraceFlag marks
// a request frame whose payload starts with a 16-byte trace context
// (trace_id u64 + parent span u64, little-endian, counted in payload_size)
// ahead of the request_payload below. Unknown flag bits, or the trace flag
// on a non-request frame, are rejected as bad_type — hostile bytes in the
// flags byte stay typed errors, exactly as the reserved byte was under v1.
//
// All integers are little-endian. Frame types:
//
//   request   client → server  evaluate one trace block (request_payload)
//   response  server → client  terminal result for a request
//   cancel    client → server  cancel the in-flight request with this id
//   ping      client → server  liveness probe (empty payload)
//   pong      server → client  ping echo (request_id echoed)
//   error     server → client  typed rejection (error_payload); for protocol
//                              errors the connection closes after it
//   busy      server → client  overload shed (busy_payload) — retriable; the
//                              connection stays open
//   goodbye   server → client  orderly close notification (empty payload)
//
// request_payload layout (header.payload_size must equal exactly
// 24 + shots * 2 * samples_per_quadrature * 4):
//
//   offset  size  field
//        0     4  qubit
//        4     1  engine        serve::engine_kind
//        5     3  reserved      must be 0
//        8     8  deadline_seconds (f64; 0 = server default)
//       16     4  samples_per_quadrature
//       20     4  shots
//       24     …  shots rows of 2N f32 samples ([I… | Q…] per row)
//
// response_payload layout (states/logits present only when status == ok):
//
//   offset  size  field
//        0     1  status        serve::request_status
//        1     1  engine
//        2     2  reserved
//        4     4  shots
//        8     8  model_version
//       16     8  latency_seconds (f64)
//       24  shots u8 states, then shots × 4 bytes of engine-native logits
//                 (f32 for float_student, raw Q16.16 for fixed_q16)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/serve/request.hpp"

namespace klinq::net {

inline constexpr std::uint32_t kMagic = 0x514E4C4Bu;  // "KLNQ"
inline constexpr std::uint8_t kProtocolVersion = 2;
/// Oldest version decode_header still accepts (per-connection negotiation:
/// the server answers in whatever version the client spoke first).
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
inline constexpr std::size_t kRequestPayloadHeaderSize = 24;
inline constexpr std::size_t kResponsePayloadHeaderSize = 24;
/// v2 flags-byte bit: this request frame's payload starts with a 16-byte
/// trace context. Every other flag bit is reserved and rejected.
inline constexpr std::uint8_t kTraceFlag = 0x01;
inline constexpr std::size_t kTraceContextSize = 16;

enum class frame_type : std::uint8_t {
  request = 1,
  response = 2,
  cancel = 3,
  ping = 4,
  pong = 5,
  error = 6,
  busy = 7,
  goodbye = 8,
};

const char* frame_type_name(frame_type type) noexcept;

/// Why a busy frame shed the request. Every reason is retriable; the
/// connection stays open.
enum class busy_reason : std::uint16_t {
  /// The server-wide inflight budget (or the serve layer itself) is full.
  server_busy = 0,
  /// This connection is at its max_inflight_per_connection quota.
  connection_inflight = 1,
  /// This connection is at its inflight payload byte budget.
  connection_bytes = 2,
  /// The front end is draining; no new work is admitted.
  draining = 3,
};

const char* busy_reason_name(busy_reason reason) noexcept;

/// Typed protocol errors. Any of these closes the offending connection
/// (after the error frame is flushed); only that connection.
enum class error_code : std::uint16_t {
  malformed_frame = 0,  // bad magic / bad header CRC
  bad_version = 1,
  bad_type = 2,
  oversize_frame = 3,  // payload_size above the configured bound
  decode_error = 4,    // request payload inconsistent with its own header
  internal = 5,
};

const char* error_code_name(error_code code) noexcept;

/// IEEE 802.3 CRC32 (reflected, poly 0xEDB88320), the zlib/PNG polynomial.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

/// Decoded frame header.
struct frame_header {
  std::uint8_t version = kProtocolVersion;
  frame_type type = frame_type::ping;
  serve::lane_class lane = serve::lane_class::bulk;
  std::uint8_t flags = 0;  // v2 only; encode_header zeroes it for v1 frames
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;

  bool has_trace() const noexcept { return (flags & kTraceFlag) != 0; }
};

/// Client-stamped trace correlation carried as the first kTraceContextSize
/// payload bytes of a kTraceFlag request frame (both fields u64 LE).
struct trace_context {
  std::uint64_t trace_id = 0;     // 0 = untraced
  std::uint64_t parent_span = 0;  // client's RTT span id
};

/// Serializes `ctx` into exactly kTraceContextSize bytes.
void encode_trace_context(const trace_context& ctx, std::uint8_t* out) noexcept;

/// Parses kTraceContextSize bytes (the caller checked the length).
trace_context decode_trace_context(const std::uint8_t* data) noexcept;

/// Serializes `header` (computing the CRC) into exactly kHeaderSize bytes.
void encode_header(const frame_header& header, std::uint8_t* out) noexcept;

/// Outcome of decode_header: ok, or the typed error the server must answer
/// with before closing the connection.
enum class header_verdict : std::uint8_t {
  ok,
  bad_magic,
  bad_crc,
  bad_version,
  bad_type,
};

/// Parses kHeaderSize bytes. On any non-ok verdict `out` holds whatever was
/// parsed before the check failed (request_id is valid for bad_version /
/// bad_type, so the error frame can still correlate).
header_verdict decode_header(const std::uint8_t* data,
                             frame_header& out) noexcept;

/// Fixed-size prefix of a request payload (everything but the samples).
struct request_info {
  std::uint32_t qubit = 0;
  serve::engine_kind engine = serve::engine_kind::fixed_q16;
  double deadline_seconds = 0.0;
  std::uint32_t samples_per_quadrature = 0;
  std::uint32_t shots = 0;
};

/// Exact payload size for a request with these dimensions.
constexpr std::size_t request_payload_size(std::uint32_t shots,
                                           std::uint32_t samples) noexcept {
  return kRequestPayloadHeaderSize +
         static_cast<std::size_t>(shots) * 2 * samples * sizeof(float);
}

/// Serializes a full request frame (header + payload) for `traces`. A
/// non-null `trace` with a nonzero trace_id emits a v2 kTraceFlag frame
/// whose payload is the 16-byte context followed by the request payload;
/// otherwise the frame is an unflagged v2 frame with the plain payload.
std::vector<std::uint8_t> encode_request(std::uint64_t request_id,
                                         const request_info& info,
                                         serve::lane_class lane,
                                         const data::trace_dataset& traces,
                                         const trace_context* trace = nullptr);

/// Decodes a request payload into `traces` (resized to shots rows of
/// 2·samples columns, filled row by row — the dataset the readout_request
/// then borrows). Throws invalid_argument_error when the payload disagrees
/// with its own dimensions or the reserved bytes are nonzero.
request_info decode_request(std::span<const std::uint8_t> payload,
                            data::trace_dataset& traces);

/// Serializes a full response frame for a finished result. Non-ok statuses
/// carry no data rows (their buffers are unspecified by contract).
/// `version` is the connection's negotiated protocol version.
std::vector<std::uint8_t> encode_response(std::uint64_t request_id,
                                          const serve::readout_result& result,
                                          std::uint8_t version =
                                              kProtocolVersion);

/// Client-side decoded response.
struct response_view {
  serve::request_status status = serve::request_status::ok;
  serve::engine_kind engine = serve::engine_kind::fixed_q16;
  std::uint32_t shots = 0;
  std::uint64_t model_version = 0;
  double latency_seconds = 0.0;
  std::vector<std::uint8_t> states;
  std::vector<float> logits;           // float_student
  std::vector<std::int32_t> registers;  // fixed_q16 raw Q16.16 bits
};

/// Throws invalid_argument_error on a size-inconsistent payload.
response_view decode_response(std::span<const std::uint8_t> payload);

/// Small control frames. `version` is the connection's negotiated protocol
/// version (server-side frames echo the version the client spoke).
std::vector<std::uint8_t> encode_control(frame_type type,
                                         std::uint64_t request_id,
                                         std::uint8_t version =
                                             kProtocolVersion);
std::vector<std::uint8_t> encode_busy(std::uint64_t request_id,
                                      busy_reason reason,
                                      std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       error_code code,
                                       const std::string& message,
                                       std::uint8_t version =
                                           kProtocolVersion);

/// Decoded busy/error payloads (client side).
busy_reason decode_busy(std::span<const std::uint8_t> payload);
struct error_view {
  error_code code = error_code::internal;
  std::string message;
};
error_view decode_error(std::span<const std::uint8_t> payload);

}  // namespace klinq::net
