#include "klinq/net/frame.hpp"

#include <array>
#include <cmath>
#include <cstring>

#include "klinq/common/error.hpp"

namespace klinq::net {

namespace {

// Little-endian load/store via memcpy (the project targets x86-64; a
// big-endian port would byte-swap here and nowhere else).
template <typename T>
void store(std::uint8_t* out, T value) noexcept {
  std::memcpy(out, &value, sizeof(T));
}

template <typename T>
T load(const std::uint8_t* in) noexcept {
  T value;
  std::memcpy(&value, in, sizeof(T));
  return value;
}

struct crc_table {
  std::array<std::uint32_t, 256> entries{};
  crc_table() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

bool valid_frame_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(frame_type::request) &&
         raw <= static_cast<std::uint8_t>(frame_type::goodbye);
}

std::vector<std::uint8_t> frame_with_payload(const frame_header& header,
                                             std::size_t payload_size) {
  std::vector<std::uint8_t> bytes(kHeaderSize + payload_size);
  frame_header h = header;
  h.payload_size = static_cast<std::uint32_t>(payload_size);
  encode_header(h, bytes.data());
  return bytes;
}

}  // namespace

const char* frame_type_name(frame_type type) noexcept {
  switch (type) {
    case frame_type::request: return "request";
    case frame_type::response: return "response";
    case frame_type::cancel: return "cancel";
    case frame_type::ping: return "ping";
    case frame_type::pong: return "pong";
    case frame_type::error: return "error";
    case frame_type::busy: return "busy";
    case frame_type::goodbye: return "goodbye";
  }
  return "unknown";
}

const char* busy_reason_name(busy_reason reason) noexcept {
  switch (reason) {
    case busy_reason::server_busy: return "server-busy";
    case busy_reason::connection_inflight: return "connection-inflight";
    case busy_reason::connection_bytes: return "connection-bytes";
    case busy_reason::draining: return "draining";
  }
  return "unknown";
}

const char* error_code_name(error_code code) noexcept {
  switch (code) {
    case error_code::malformed_frame: return "malformed-frame";
    case error_code::bad_version: return "bad-version";
    case error_code::bad_type: return "bad-type";
    case error_code::oversize_frame: return "oversize-frame";
    case error_code::decode_error: return "decode-error";
    case error_code::internal: return "internal";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  static const crc_table table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void encode_header(const frame_header& header, std::uint8_t* out) noexcept {
  store<std::uint32_t>(out, kMagic);
  out[4] = header.version;
  out[5] = static_cast<std::uint8_t>(header.type);
  out[6] = static_cast<std::uint8_t>(header.lane);
  // The flags byte exists only from v2 on; v1 frames keep it reserved-zero.
  out[7] = header.version >= 2 ? header.flags : 0;
  store<std::uint64_t>(out + 8, header.request_id);
  store<std::uint32_t>(out + 16, header.payload_size);
  store<std::uint32_t>(out + 20, crc32(out, 20));
}

header_verdict decode_header(const std::uint8_t* data,
                             frame_header& out) noexcept {
  if (load<std::uint32_t>(data) != kMagic) return header_verdict::bad_magic;
  if (load<std::uint32_t>(data + 20) != crc32(data, 20)) {
    return header_verdict::bad_crc;
  }
  out.version = data[4];
  out.request_id = load<std::uint64_t>(data + 8);
  out.payload_size = load<std::uint32_t>(data + 16);
  if (out.version < kMinProtocolVersion || out.version > kProtocolVersion) {
    return header_verdict::bad_version;
  }
  // The lane byte is validated here (it is enum-typed downstream). Byte 7
  // is reserved-and-zero under v1 and a flags byte under v2, where only
  // kTraceFlag — and only on request frames — is defined; anything else in
  // it stays a typed rejection.
  out.flags = out.version >= 2 ? data[7] : 0;
  const bool flags_ok =
      out.version >= 2
          ? (out.flags & ~kTraceFlag) == 0 &&
                (out.flags == 0 ||
                 data[5] == static_cast<std::uint8_t>(frame_type::request))
          : data[7] == 0;
  if (!valid_frame_type(data[5]) || data[6] > 1 || !flags_ok) {
    return header_verdict::bad_type;
  }
  out.type = static_cast<frame_type>(data[5]);
  out.lane = static_cast<serve::lane_class>(data[6]);
  return header_verdict::ok;
}

void encode_trace_context(const trace_context& ctx,
                          std::uint8_t* out) noexcept {
  store<std::uint64_t>(out, ctx.trace_id);
  store<std::uint64_t>(out + 8, ctx.parent_span);
}

trace_context decode_trace_context(const std::uint8_t* data) noexcept {
  trace_context ctx;
  ctx.trace_id = load<std::uint64_t>(data);
  ctx.parent_span = load<std::uint64_t>(data + 8);
  return ctx;
}

std::vector<std::uint8_t> encode_request(std::uint64_t request_id,
                                         const request_info& info,
                                         serve::lane_class lane,
                                         const data::trace_dataset& traces,
                                         const trace_context* trace) {
  const std::uint32_t shots = static_cast<std::uint32_t>(traces.size());
  const std::uint32_t samples =
      static_cast<std::uint32_t>(traces.samples_per_quadrature());
  const bool traced = trace != nullptr && trace->trace_id != 0;
  frame_header header;
  header.type = frame_type::request;
  header.lane = lane;
  header.request_id = request_id;
  if (traced) header.flags = kTraceFlag;
  std::vector<std::uint8_t> bytes = frame_with_payload(
      header, request_payload_size(shots, samples) +
                  (traced ? kTraceContextSize : 0));
  std::uint8_t* p = bytes.data() + kHeaderSize;
  if (traced) {
    encode_trace_context(*trace, p);
    p += kTraceContextSize;
  }
  store<std::uint32_t>(p, info.qubit);
  p[4] = static_cast<std::uint8_t>(info.engine);
  p[5] = p[6] = p[7] = 0;
  store<double>(p + 8, info.deadline_seconds);
  store<std::uint32_t>(p + 16, samples);
  store<std::uint32_t>(p + 20, shots);
  std::uint8_t* rows = p + kRequestPayloadHeaderSize;
  const std::size_t row_bytes = 2 * samples * sizeof(float);
  for (std::uint32_t r = 0; r < shots; ++r) {
    std::memcpy(rows + r * row_bytes, traces.trace(r).data(), row_bytes);
  }
  return bytes;
}

request_info decode_request(std::span<const std::uint8_t> payload,
                            data::trace_dataset& traces) {
  KLINQ_REQUIRE(payload.size() >= kRequestPayloadHeaderSize,
                "net: request payload shorter than its fixed prefix");
  const std::uint8_t* p = payload.data();
  request_info info;
  info.qubit = load<std::uint32_t>(p);
  const std::uint8_t engine_raw = p[4];
  KLINQ_REQUIRE(engine_raw <= 1, "net: request names an unknown engine");
  KLINQ_REQUIRE(p[5] == 0 && p[6] == 0 && p[7] == 0,
                "net: request reserved bytes must be zero");
  info.engine = static_cast<serve::engine_kind>(engine_raw);
  info.deadline_seconds = load<double>(p + 8);
  KLINQ_REQUIRE(
      std::isfinite(info.deadline_seconds) && info.deadline_seconds >= 0.0,
      "net: request deadline must be finite and non-negative");
  info.samples_per_quadrature = load<std::uint32_t>(p + 16);
  info.shots = load<std::uint32_t>(p + 20);
  KLINQ_REQUIRE(info.shots == 0 || info.samples_per_quadrature > 0,
                "net: request has shots but zero samples per quadrature");
  KLINQ_REQUIRE(
      payload.size() ==
          request_payload_size(info.shots, info.samples_per_quadrature),
      "net: request payload size disagrees with its shots × samples header");
  // Fill the borrowed dataset in place: this is the buffer the
  // readout_request hands the shard scheduler, so the payload is decoded
  // exactly once, straight into serving memory.
  if (traces.samples_per_quadrature() != info.samples_per_quadrature) {
    traces = data::trace_dataset(info.shots, info.samples_per_quadrature);
  }
  traces.resize_traces(info.shots);
  const std::uint8_t* rows = p + kRequestPayloadHeaderSize;
  const std::size_t row_bytes =
      2 * static_cast<std::size_t>(info.samples_per_quadrature) *
      sizeof(float);
  for (std::uint32_t r = 0; r < info.shots; ++r) {
    std::memcpy(traces.trace(r).data(), rows + r * row_bytes, row_bytes);
  }
  return info;
}

std::vector<std::uint8_t> encode_response(std::uint64_t request_id,
                                          const serve::readout_result& result,
                                          std::uint8_t version) {
  const bool ok = result.status == serve::request_status::ok;
  const std::uint32_t shots =
      static_cast<std::uint32_t>(result.states.size());
  const std::size_t data_bytes =
      ok ? static_cast<std::size_t>(shots) * (1 + sizeof(float)) : 0;
  frame_header header;
  header.version = version;
  header.type = frame_type::response;
  header.request_id = request_id;
  std::vector<std::uint8_t> bytes =
      frame_with_payload(header, kResponsePayloadHeaderSize + data_bytes);
  std::uint8_t* p = bytes.data() + kHeaderSize;
  p[0] = static_cast<std::uint8_t>(result.status);
  p[1] = static_cast<std::uint8_t>(result.engine);
  p[2] = p[3] = 0;
  store<std::uint32_t>(p + 4, ok ? shots : 0);
  store<std::uint64_t>(p + 8, result.model_version);
  store<double>(p + 16, result.latency_seconds);
  if (ok) {
    std::uint8_t* states = p + kResponsePayloadHeaderSize;
    std::memcpy(states, result.states.data(), shots);
    std::uint8_t* values = states + shots;
    if (result.engine == serve::engine_kind::fixed_q16) {
      for (std::uint32_t r = 0; r < shots; ++r) {
        store<std::int32_t>(values + r * 4, result.registers[r].raw());
      }
    } else {
      std::memcpy(values, result.logits.data(),
                  static_cast<std::size_t>(shots) * sizeof(float));
    }
  }
  return bytes;
}

response_view decode_response(std::span<const std::uint8_t> payload) {
  KLINQ_REQUIRE(payload.size() >= kResponsePayloadHeaderSize,
                "net: response payload shorter than its fixed prefix");
  const std::uint8_t* p = payload.data();
  response_view view;
  KLINQ_REQUIRE(p[0] <= 3, "net: response carries an unknown status");
  KLINQ_REQUIRE(p[1] <= 1, "net: response carries an unknown engine");
  view.status = static_cast<serve::request_status>(p[0]);
  view.engine = static_cast<serve::engine_kind>(p[1]);
  view.shots = load<std::uint32_t>(p + 4);
  view.model_version = load<std::uint64_t>(p + 8);
  view.latency_seconds = load<double>(p + 16);
  const std::size_t data_bytes =
      static_cast<std::size_t>(view.shots) * (1 + sizeof(float));
  KLINQ_REQUIRE(payload.size() == kResponsePayloadHeaderSize + data_bytes,
                "net: response payload size disagrees with its shot count");
  if (view.shots > 0) {
    const std::uint8_t* states = p + kResponsePayloadHeaderSize;
    view.states.assign(states, states + view.shots);
    const std::uint8_t* values = states + view.shots;
    if (view.engine == serve::engine_kind::fixed_q16) {
      view.registers.resize(view.shots);
      for (std::uint32_t r = 0; r < view.shots; ++r) {
        view.registers[r] = load<std::int32_t>(values + r * 4);
      }
    } else {
      view.logits.resize(view.shots);
      std::memcpy(view.logits.data(), values,
                  static_cast<std::size_t>(view.shots) * sizeof(float));
    }
  }
  return view;
}

std::vector<std::uint8_t> encode_control(frame_type type,
                                         std::uint64_t request_id,
                                         std::uint8_t version) {
  frame_header header;
  header.version = version;
  header.type = type;
  header.request_id = request_id;
  return frame_with_payload(header, 0);
}

std::vector<std::uint8_t> encode_busy(std::uint64_t request_id,
                                      busy_reason reason,
                                      std::uint8_t version) {
  frame_header header;
  header.version = version;
  header.type = frame_type::busy;
  header.request_id = request_id;
  std::vector<std::uint8_t> bytes = frame_with_payload(header, 2);
  store<std::uint16_t>(bytes.data() + kHeaderSize,
                       static_cast<std::uint16_t>(reason));
  return bytes;
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       error_code code,
                                       const std::string& message,
                                       std::uint8_t version) {
  frame_header header;
  header.version = version;
  header.type = frame_type::error;
  header.request_id = request_id;
  std::vector<std::uint8_t> bytes = frame_with_payload(header, 2 + message.size());
  store<std::uint16_t>(bytes.data() + kHeaderSize,
                       static_cast<std::uint16_t>(code));
  std::memcpy(bytes.data() + kHeaderSize + 2, message.data(), message.size());
  return bytes;
}

busy_reason decode_busy(std::span<const std::uint8_t> payload) {
  KLINQ_REQUIRE(payload.size() == 2, "net: busy payload must be 2 bytes");
  const std::uint16_t raw = load<std::uint16_t>(payload.data());
  KLINQ_REQUIRE(raw <= 3, "net: unknown busy reason");
  return static_cast<busy_reason>(raw);
}

error_view decode_error(std::span<const std::uint8_t> payload) {
  KLINQ_REQUIRE(payload.size() >= 2, "net: error payload shorter than its code");
  error_view view;
  const std::uint16_t raw = load<std::uint16_t>(payload.data());
  KLINQ_REQUIRE(raw <= 5, "net: unknown error code");
  view.code = static_cast<error_code>(raw);
  view.message.assign(reinterpret_cast<const char*>(payload.data()) + 2,
                      payload.size() - 2);
  return view;
}

}  // namespace klinq::net
