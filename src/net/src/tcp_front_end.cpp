#include "klinq/net/tcp_front_end.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <optional>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/common/stopwatch.hpp"
#include "klinq/fault/fault.hpp"
#include "klinq/net/frame.hpp"

namespace klinq::net {

void front_end_config::validate() const {
  KLINQ_REQUIRE(!bind_address.empty(),
                "front_end_config: bind_address must not be empty");
  KLINQ_REQUIRE(listen_backlog > 0,
                "front_end_config: listen_backlog must be positive");
  KLINQ_REQUIRE(max_connections > 0,
                "front_end_config: max_connections must be positive");
  KLINQ_REQUIRE(
      max_inflight_per_connection > 0,
      "front_end_config: max_inflight_per_connection must be positive");
  KLINQ_REQUIRE(
      max_inflight_bytes_per_connection > 0,
      "front_end_config: max_inflight_bytes_per_connection must be positive");
  KLINQ_REQUIRE(max_inflight > 0,
                "front_end_config: max_inflight must be positive");
  KLINQ_REQUIRE(feedback_reserve < max_inflight,
                "front_end_config: feedback_reserve must leave at least one "
                "slot for the bulk lane");
  KLINQ_REQUIRE(std::isfinite(read_idle_seconds) && read_idle_seconds >= 0.0,
                "front_end_config: read_idle_seconds must be finite and "
                "non-negative");
  KLINQ_REQUIRE(
      std::isfinite(write_stall_seconds) && write_stall_seconds >= 0.0,
      "front_end_config: write_stall_seconds must be finite and non-negative");
  KLINQ_REQUIRE(max_write_queue_bytes > 0,
                "front_end_config: max_write_queue_bytes must be positive");
  KLINQ_REQUIRE(max_frame_payload >= kRequestPayloadHeaderSize,
                "front_end_config: max_frame_payload cannot admit even an "
                "empty request");
  KLINQ_REQUIRE(
      std::isfinite(drain_timeout_seconds) && drain_timeout_seconds >= 0.0,
      "front_end_config: drain_timeout_seconds must be finite and "
      "non-negative");
  KLINQ_REQUIRE(
      std::isfinite(poll_interval_seconds) && poll_interval_seconds > 0.0,
      "front_end_config: poll_interval_seconds must be finite and positive");
}

void front_end_stats::validate() const {
  KLINQ_REQUIRE(connections_closed <= connections_accepted,
                "front_end_stats: closed more connections than accepted");
  KLINQ_REQUIRE(connections_evicted <= connections_closed,
                "front_end_stats: evictions exceed closes");
  KLINQ_REQUIRE(open_connections ==
                    connections_accepted - connections_closed,
                "front_end_stats: open connections disagree with "
                "accepted - closed");
  // The exact-reconciliation invariant the chaos harness exists to prove:
  // every admitted request is either answered, dropped for a departed
  // client, or still in flight — no fourth bucket, no leaks.
  KLINQ_REQUIRE(responses_sent + results_dropped + inflight ==
                    requests_admitted,
                "front_end_stats: ticket accounting does not reconcile "
                "(admitted != responses + dropped + inflight)");
  // (malformed_frames is deliberately NOT bounded by frames_received:
  // frames_received counts only well-formed frames, while a malformed
  // header is rejected before it ever counts as received.)
  KLINQ_REQUIRE(cancels_received <= frames_received,
                "front_end_stats: cancel frames exceed frames received");
  KLINQ_REQUIRE(pings_received <= frames_received,
                "front_end_stats: ping frames exceed frames received");
  // Every received ping queues exactly one pong (even on a connection that
  // is already flushing toward close).
  KLINQ_REQUIRE(pongs_sent == pings_received,
                "front_end_stats: pongs sent disagree with pings received");
}

namespace {

std::uint64_t parse_env_u64(const char* name, const char* value) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed);
    KLINQ_REQUIRE(consumed == std::strlen(value), "trailing garbage");
    return parsed;
  } catch (const std::exception&) {
    throw invalid_argument_error(std::string(name) + ": '" + value +
                                 "' is not a valid unsigned integer");
  }
}

double parse_env_seconds(const char* name, const char* value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    KLINQ_REQUIRE(consumed == std::strlen(value), "trailing garbage");
    return parsed;
  } catch (const std::exception&) {
    throw invalid_argument_error(std::string(name) + ": '" + value +
                                 "' is not a valid number of seconds");
  }
}

}  // namespace

front_end_config front_end_config::from_env() {
  return from_env(front_end_config{});
}

front_end_config front_end_config::from_env(front_end_config base) {
  if (const char* listen = std::getenv("KLINQ_LISTEN")) {
    const std::string spec(listen);
    const std::size_t colon = spec.rfind(':');
    std::string port_text = spec;
    if (colon != std::string::npos) {
      const std::string host = spec.substr(0, colon);
      if (!host.empty()) base.bind_address = host;
      port_text = spec.substr(colon + 1);
    }
    const std::uint64_t port =
        parse_env_u64("KLINQ_LISTEN", port_text.c_str());
    KLINQ_REQUIRE(port <= 65535, "KLINQ_LISTEN: port out of range");
    base.port = static_cast<std::uint16_t>(port);
  }
  const auto read_size = [](const char* name, std::size_t& field) {
    if (const char* value = std::getenv(name)) {
      field = static_cast<std::size_t>(parse_env_u64(name, value));
    }
  };
  const auto read_seconds = [](const char* name, double& field) {
    if (const char* value = std::getenv(name)) {
      field = parse_env_seconds(name, value);
    }
  };
  read_size("KLINQ_NET_MAX_CONNECTIONS", base.max_connections);
  read_size("KLINQ_NET_MAX_INFLIGHT", base.max_inflight);
  read_size("KLINQ_NET_MAX_INFLIGHT_PER_CONNECTION",
            base.max_inflight_per_connection);
  read_size("KLINQ_NET_MAX_INFLIGHT_BYTES_PER_CONNECTION",
            base.max_inflight_bytes_per_connection);
  read_size("KLINQ_NET_FEEDBACK_RESERVE", base.feedback_reserve);
  read_seconds("KLINQ_NET_READ_IDLE_SECONDS", base.read_idle_seconds);
  read_seconds("KLINQ_NET_WRITE_STALL_SECONDS", base.write_stall_seconds);
  read_size("KLINQ_NET_MAX_WRITE_QUEUE_BYTES", base.max_write_queue_bytes);
  read_size("KLINQ_NET_MAX_FRAME_PAYLOAD", base.max_frame_payload);
  read_seconds("KLINQ_NET_DRAIN_TIMEOUT_SECONDS", base.drain_timeout_seconds);
  return base;
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  KLINQ_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: fcntl(O_NONBLOCK) failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort — latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

struct tcp_front_end::impl {
  // One client connection, owned by the poll loop; queue/counter fields are
  // shared with the completion thread under state_mutex_.
  struct connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> read_buffer;
    std::deque<std::vector<std::uint8_t>> write_queue;
    std::size_t write_queue_bytes = 0;
    std::size_t write_offset = 0;  // sent bytes of write_queue.front()
    std::size_t inflight = 0;
    std::size_t inflight_bytes = 0;
    /// request_id → ticket id (a duplicate request_id overwrites; cancel
    /// then targets the most recent).
    std::unordered_map<std::uint64_t, std::uint64_t> requests;
    double last_read_at = 0.0;
    double last_write_progress_at = 0.0;
    double accepted_at = 0.0;
    /// Protocol version of the first frame this client sent; every outbound
    /// frame echoes it (0 = nothing received yet → current version).
    std::uint8_t version = 0;
    /// Requests admitted on this connection, by lane (the /statusz mix).
    std::array<std::uint64_t, 2> lane_admitted{};
    /// Protocol violation or client goodbye: stop reading, flush the write
    /// queue (error/goodbye frame included), then close.
    bool closing = false;
    /// closing was an eviction/violation (for the evicted counter).
    bool evict = false;
    // --- wire tracing (sampled requests only) ----------------------------
    /// trace_clock_us() when the current socket-read batch started — the
    /// start of the net.read span for any traced request it completes.
    std::uint64_t read_batch_start_us = 0;
    /// Cumulative queued/flushed byte counters: a net.write span completes
    /// when flushed_bytes_total reaches the target stamped at queue time.
    std::uint64_t queued_bytes_total = 0;
    std::uint64_t flushed_bytes_total = 0;
    struct write_span {
      std::uint64_t trace_id = 0;
      std::uint64_t parent_span = 0;
      std::uint64_t start_us = 0;
      std::uint64_t target = 0;  // queued_bytes_total to reach
    };
    std::vector<write_span> write_spans;  // dropped on close, unemitted
  };

  /// One admitted network request: who to answer, and the decoded trace
  /// buffer the serve layer is borrowing (owned here until completion).
  struct inflight_ticket {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::size_t payload_bytes = 0;
    serve::engine_kind engine = serve::engine_kind::fixed_q16;
    serve::lane_class lane = serve::lane_class::bulk;
    std::unique_ptr<data::trace_dataset> traces;
    /// Wire trace context (trace_id 0 = untraced) — carried through to the
    /// completion path so the net.write span joins the same trace.
    std::uint64_t trace_id = 0;
    std::uint64_t trace_parent = 0;
  };

  serve::readout_server& server;
  front_end_config config;
  std::unique_ptr<obs::metric_registry> owned_metrics;
  obs::metric_registry* metrics = nullptr;

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  int wake_pipe[2] = {-1, -1};  // poll-loop wakeup (acceptor + completion)

  stopwatch clock;
  std::atomic<bool> draining{false};
  std::atomic<bool> stopping{false};
  bool shut_down = false;  // shutdown() ran to completion (main thread only)

  // --- state_mutex_ domain -----------------------------------------------
  mutable std::mutex state_mutex;
  std::uint64_t next_conn_id = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns;
  std::vector<int> pending_accepts;
  std::unordered_map<std::uint64_t, inflight_ticket> tickets;

  // --- completion_mutex_ domain ------------------------------------------
  std::mutex completion_mutex;
  std::condition_variable completion_ready;
  std::deque<std::uint64_t> done_queue;

  std::thread acceptor_thread;
  std::thread poll_thread;
  std::thread completion_thread;

  // --- metric cells (pre-resolved; recording is lock-free) ---------------
  obs::counter* accepted_cell = nullptr;
  obs::counter* rejected_cell = nullptr;
  obs::counter* closed_cell = nullptr;
  obs::counter* evicted_cell = nullptr;
  obs::counter* frames_in_cell = nullptr;
  obs::counter* frames_out_cell = nullptr;
  obs::counter* bytes_in_cell = nullptr;
  obs::counter* bytes_out_cell = nullptr;
  obs::counter* admitted_cell = nullptr;
  obs::counter* responses_cell = nullptr;
  obs::counter* dropped_cell = nullptr;
  obs::counter* cancels_cell = nullptr;
  obs::counter* pings_cell = nullptr;
  obs::counter* pongs_cell = nullptr;
  std::array<obs::counter*, 4> shed_cells{};       // by busy_reason
  std::array<obs::counter*, 6> malformed_cells{};  // by error_code
  obs::gauge* open_conns_cell = nullptr;
  obs::gauge* inflight_cell = nullptr;
  std::array<obs::log_histogram*, 2> lane_seconds{};  // by lane_class
  std::uint64_t collector_id = 0;

  explicit impl(serve::readout_server& srv, front_end_config cfg)
      : server(srv), config(std::move(cfg)) {
    config.validate();
    init_metrics();
    // Pull collector: every snapshot() re-derives the two gauges from the
    // authoritative maps, so the scraped families cannot drift from the
    // front end's own accounting (collectors run outside registry locks,
    // so taking state_mutex here is cycle-free).
    collector_id = metrics->add_collector([this] {
      const std::lock_guard lock(state_mutex);
      open_conns_cell->set(
          static_cast<double>(conns.size() + pending_accepts.size()));
      inflight_cell->set(static_cast<double>(tickets.size()));
    });
    open_sockets();
    server.set_on_complete(
        [this](serve::ticket t, serve::request_status) { doorbell(t.id); });
    acceptor_thread = std::thread([this] { acceptor_loop(); });
    poll_thread = std::thread([this] { poll_loop(); });
    completion_thread = std::thread([this] { completion_loop(); });
  }

  void init_metrics() {
    if (config.metrics != nullptr) {
      metrics = config.metrics;
    } else {
      owned_metrics = std::make_unique<obs::metric_registry>();
      metrics = owned_metrics.get();
    }
    obs::metric_registry& m = *metrics;
    const char* conn_help = "Connection lifecycle events";
    accepted_cell = &m.get_counter("klinq_net_connections_total",
                                   {{"event", "accepted"}}, conn_help);
    rejected_cell = &m.get_counter("klinq_net_connections_total",
                                   {{"event", "rejected"}}, conn_help);
    closed_cell = &m.get_counter("klinq_net_connections_total",
                                 {{"event", "closed"}}, conn_help);
    evicted_cell = &m.get_counter("klinq_net_connections_total",
                                  {{"event", "evicted"}}, conn_help);
    frames_in_cell = &m.get_counter("klinq_net_frames_total",
                                    {{"dir", "in"}}, "Frames by direction");
    frames_out_cell = &m.get_counter("klinq_net_frames_total",
                                     {{"dir", "out"}}, "Frames by direction");
    bytes_in_cell = &m.get_counter("klinq_net_bytes_total", {{"dir", "in"}},
                                   "Socket bytes by direction");
    bytes_out_cell = &m.get_counter("klinq_net_bytes_total", {{"dir", "out"}},
                                    "Socket bytes by direction");
    admitted_cell = &m.get_counter("klinq_net_requests_admitted_total", {},
                                   "Request frames admitted into the server");
    responses_cell = &m.get_counter("klinq_net_responses_total", {},
                                    "Response frames queued to clients");
    dropped_cell =
        &m.get_counter("klinq_net_results_dropped_total", {},
                       "Completed results dropped because the client left");
    cancels_cell = &m.get_counter("klinq_net_cancels_total", {},
                                  "Cancel frames received");
    pings_cell = &m.get_counter("klinq_net_pings_received_total", {},
                                "Ping frames received (client keepalive)");
    pongs_cell = &m.get_counter("klinq_net_pongs_sent_total", {},
                                "Pong frames queued in answer to pings");
    for (std::size_t r = 0; r < shed_cells.size(); ++r) {
      shed_cells[r] = &m.get_counter(
          "klinq_net_shed_total",
          {{"reason", busy_reason_name(static_cast<busy_reason>(r))}},
          "Requests shed with a retriable busy frame, by reason");
    }
    for (std::size_t c = 0; c < malformed_cells.size(); ++c) {
      malformed_cells[c] = &m.get_counter(
          "klinq_net_malformed_frames_total",
          {{"reason", error_code_name(static_cast<error_code>(c))}},
          "Protocol violations that closed the offending connection");
    }
    open_conns_cell = &m.get_gauge("klinq_net_open_connections", {},
                                   "Currently open client connections");
    inflight_cell = &m.get_gauge("klinq_net_inflight", {},
                                 "Admitted requests not yet answered");
    for (std::size_t l = 0; l < lane_seconds.size(); ++l) {
      lane_seconds[l] = &m.get_histogram(
          "klinq_net_request_seconds",
          {{"lane", serve::lane_name(static_cast<serve::lane_class>(l))}},
          "Admission to response-queued latency, by latency class");
    }
  }

  void open_sockets() {
    KLINQ_REQUIRE(::pipe(wake_pipe) == 0, "net: pipe() failed");
    set_nonblocking(wake_pipe[0]);
    set_nonblocking(wake_pipe[1]);
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    KLINQ_REQUIRE(listen_fd >= 0, "net: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    KLINQ_REQUIRE(
        ::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) == 1,
        "net: bind_address is not a valid IPv4 address");
    KLINQ_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "net: bind() failed (port in use?)");
    KLINQ_REQUIRE(::listen(listen_fd, config.listen_backlog) == 0,
                  "net: listen() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    KLINQ_REQUIRE(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "net: getsockname() failed");
    bound_port = ntohs(bound.sin_port);
  }

  ~impl() {
    // shutdown() already ran (the wrapper guarantees it); release the fds.
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_pipe[0] >= 0) ::close(wake_pipe[0]);
    if (wake_pipe[1] >= 0) ::close(wake_pipe[1]);
  }

  // --- doorbell (runs on shard executors / submitting threads) -----------

  void doorbell(std::uint64_t ticket_id) {
    {
      const std::lock_guard lock(completion_mutex);
      done_queue.push_back(ticket_id);
    }
    completion_ready.notify_one();
  }

  void wake_poll() {
    const std::uint8_t byte = 1;
    // The pipe being full is fine: a queued byte already guarantees a wake.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
  }

  // --- wire tracing -------------------------------------------------------

  /// The armed ring, or null — the hot-path gate (one relaxed load).
  obs::trace_ring* trace_sink() const noexcept {
    return config.traces != nullptr && config.traces->armed() ? config.traces
                                                              : nullptr;
  }

  /// Outbound frames echo the version the client spoke first.
  static std::uint8_t conn_version(const connection& conn) noexcept {
    return conn.version != 0 ? conn.version : kProtocolVersion;
  }

  static void record_net_span(obs::trace_ring& ring, std::uint64_t trace_id,
                              std::uint64_t parent, const char* name,
                              std::uint64_t start_us, std::uint64_t end_us) {
    obs::trace_span span;
    span.trace_id = trace_id;
    span.span_id = ring.next_span_id();
    span.parent_span = parent;
    span.start_us = start_us;
    span.duration_us = end_us > start_us ? end_us - start_us : 0;
    span.name = name;
    span.category = "net";
    ring.record(std::move(span));
  }

  // --- acceptor -----------------------------------------------------------

  void acceptor_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      try {
        fault::trigger("net.accept");
      } catch (const std::exception&) {
        ::close(fd);  // a flaky accept: the connection never registers
        rejected_cell->inc();
        continue;
      }
      bool over_cap = false;
      {
        const std::lock_guard lock(state_mutex);
        over_cap = conns.size() + pending_accepts.size() >=
                       config.max_connections ||
                   draining.load(std::memory_order_relaxed);
        if (!over_cap) {
          pending_accepts.push_back(fd);
          accepted_cell->inc();
          open_conns_cell->set(
              static_cast<double>(conns.size() + pending_accepts.size()));
        }
      }
      if (over_cap) {
        // Best-effort shed before closing: the fd is still blocking, and the
        // frame is tiny.
        const std::vector<std::uint8_t> busy = encode_busy(
            0, draining.load(std::memory_order_relaxed)
                   ? busy_reason::draining
                   : busy_reason::server_busy);
        ::send(fd, busy.data(), busy.size(), MSG_NOSIGNAL);
        ::close(fd);
        rejected_cell->inc();
        shed_cells[static_cast<std::size_t>(
                       draining.load(std::memory_order_relaxed)
                           ? busy_reason::draining
                           : busy_reason::server_busy)]
            ->inc();
        continue;
      }
      wake_poll();
    }
  }

  // --- poll loop ----------------------------------------------------------

  void poll_loop() {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfd_conn_ids;
    std::vector<std::uint8_t> read_chunk(std::size_t{64} << 10);
    for (;;) {
      // shutdown() set stopping only after its bounded flush window, so
      // breaking immediately cannot strand a flushable write queue.
      if (stopping.load(std::memory_order_relaxed)) break;
      pfds.clear();
      pfd_conn_ids.clear();
      pfds.push_back({wake_pipe[0], POLLIN, 0});
      {
        const std::lock_guard lock(state_mutex);
        adopt_pending_locked();
        for (auto& [id, conn] : conns) {
          short events = conn->closing ? 0 : POLLIN;
          if (!conn->write_queue.empty()) events |= POLLOUT;
          if (events == 0) events = POLLERR;  // still watch for hangup
          pfds.push_back({conn->fd, events, 0});
          pfd_conn_ids.push_back(id);
        }
      }
      const int timeout_ms = std::max(
          1, static_cast<int>(config.poll_interval_seconds * 1000.0));
      ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (pfds[0].revents & POLLIN) {
        std::uint8_t drain_buf[64];
        while (::read(wake_pipe[0], drain_buf, sizeof(drain_buf)) > 0) {
        }
      }
      for (std::size_t i = 1; i < pfds.size(); ++i) {
        const std::uint64_t conn_id = pfd_conn_ids[i - 1];
        const short revents = pfds[i].revents;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
          close_connection(conn_id, /*evicted=*/false);
          continue;
        }
        if (revents & POLLIN) handle_readable(conn_id, read_chunk);
        if (revents & POLLOUT) handle_writable(conn_id);
      }
      enforce_deadlines();
      finish_closing_connections();
    }
    // Exiting: close every remaining socket (tickets were reconciled by
    // shutdown before stopping was set).
    const std::lock_guard lock(state_mutex);
    for (auto& [id, conn] : conns) {
      ::close(conn->fd);
      closed_cell->inc();
      if (conn->evict) evicted_cell->inc();
    }
    conns.clear();
    for (int fd : pending_accepts) {
      ::close(fd);
      closed_cell->inc();
    }
    pending_accepts.clear();
    open_conns_cell->set(0.0);
  }

  void adopt_pending_locked() {
    for (int fd : pending_accepts) {
      set_nonblocking(fd);
      set_nodelay(fd);
      auto conn = std::make_unique<connection>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_read_at = clock.seconds();
      conn->last_write_progress_at = conn->last_read_at;
      conn->accepted_at = conn->last_read_at;
      conns.emplace(conn->id, std::move(conn));
    }
    pending_accepts.clear();
  }

  void handle_readable(std::uint64_t conn_id,
                       std::vector<std::uint8_t>& chunk) {
    bool close_now = false;
    bool evict = false;
    {
      const std::lock_guard lock(state_mutex);
      const auto it = conns.find(conn_id);
      if (it == conns.end()) return;
      connection& conn = *it->second;
      if (conn.closing) return;
      if (trace_sink() != nullptr) {
        // Anchor for the net.read span of any traced request this batch of
        // socket reads completes (one clock read per readiness event).
        conn.read_batch_start_us = obs::trace_clock_us();
      }
      for (;;) {
        const ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
        if (n == 0) {
          close_now = true;  // orderly peer close
          break;
        }
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          close_now = true;  // hard read error
          break;
        }
        bytes_in_cell->inc(static_cast<std::uint64_t>(n));
        conn.last_read_at = clock.seconds();
        bool discard = false;
        try {
          // drop: the bytes vanish, desyncing the framing — downstream the
          // malformed-frame path takes over, which is the point.
          discard = fault::trigger("net.read") == fault::action::drop;
        } catch (const std::exception&) {
          close_now = true;
          evict = true;
          break;
        }
        if (!discard) {
          conn.read_buffer.insert(conn.read_buffer.end(), chunk.data(),
                                  chunk.data() + n);
        }
        if (static_cast<std::size_t>(n) < chunk.size()) break;
      }
      if (!close_now) parse_frames_locked(conn);
    }
    if (close_now) close_connection(conn_id, evict);
  }

  /// Parses every complete frame in the connection's read buffer. Requires
  /// state_mutex_. May mark the connection closing (protocol violation).
  void parse_frames_locked(connection& conn) {
    std::size_t offset = 0;
    while (!conn.closing &&
           conn.read_buffer.size() - offset >= kHeaderSize) {
      frame_header header;
      const header_verdict verdict =
          decode_header(conn.read_buffer.data() + offset, header);
      if (verdict != header_verdict::ok) {
        const error_code code =
            verdict == header_verdict::bad_version ? error_code::bad_version
            : verdict == header_verdict::bad_type  ? error_code::bad_type
                                                   : error_code::malformed_frame;
        protocol_error_locked(conn, header.request_id, code,
                              "frame header rejected");
        break;
      }
      if (header.payload_size > config.max_frame_payload) {
        protocol_error_locked(conn, header.request_id,
                              error_code::oversize_frame,
                              "payload length above the configured bound");
        break;
      }
      // Per-connection version negotiation: the first well-formed frame
      // fixes the dialect; every outbound frame echoes it (conn_version).
      if (conn.version == 0) conn.version = header.version;
      const std::size_t frame_size = kHeaderSize + header.payload_size;
      if (conn.read_buffer.size() - offset < frame_size) break;  // partial
      frames_in_cell->inc();
      handle_frame_locked(
          conn, header,
          std::span<const std::uint8_t>(
              conn.read_buffer.data() + offset + kHeaderSize,
              header.payload_size));
      offset += frame_size;
    }
    if (offset > 0) {
      conn.read_buffer.erase(conn.read_buffer.begin(),
                             conn.read_buffer.begin() +
                                 static_cast<std::ptrdiff_t>(offset));
    }
  }

  void handle_frame_locked(connection& conn, const frame_header& header,
                           std::span<const std::uint8_t> payload) {
    switch (header.type) {
      case frame_type::request:
        handle_request_locked(conn, header, payload);
        return;
      case frame_type::cancel: {
        cancels_cell->inc();
        const auto it = conn.requests.find(header.request_id);
        if (it == conn.requests.end()) return;  // finished or unknown: benign
        const std::uint64_t ticket_id = it->second;
        if (tickets.find(ticket_id) == tickets.end()) return;
        // Still unresolved (completion consumes tickets under this mutex),
        // so cancel() cannot see a consumed ticket. false = already done.
        server.cancel(serve::ticket{ticket_id});
        return;
      }
      case frame_type::ping:
        pings_cell->inc();
        queue_frame_locked(conn, encode_control(frame_type::pong,
                                                header.request_id,
                                                conn_version(conn)));
        pongs_cell->inc();
        return;
      case frame_type::goodbye:
        conn.closing = true;  // orderly: flush what is queued, then close
        return;
      case frame_type::response:
      case frame_type::pong:
      case frame_type::busy:
      case frame_type::error:
        protocol_error_locked(conn, header.request_id, error_code::bad_type,
                              "server-to-client frame type from a client");
        return;
    }
  }

  void handle_request_locked(connection& conn, const frame_header& header,
                             std::span<const std::uint8_t> payload) {
    // v2 trace context rides as the first payload bytes of a flagged frame;
    // strip it before the admission/decode path sees the request payload.
    // When tracing is disarmed server-side the context is still stripped
    // (the frame is valid) but ignored.
    trace_context tctx;
    if (header.has_trace()) {
      if (payload.size() < kTraceContextSize) {
        protocol_error_locked(conn, header.request_id,
                              error_code::decode_error,
                              "trace-flagged request shorter than its context");
        return;
      }
      tctx = decode_trace_context(payload.data());
      payload = payload.subspan(kTraceContextSize);
    }
    obs::trace_ring* ring = trace_sink();
    const bool traced = ring != nullptr && tctx.trace_id != 0;
    const std::uint64_t admit_start_us = traced ? obs::trace_clock_us() : 0;
    if (traced) {
      record_net_span(*ring, tctx.trace_id, tctx.parent_span, "net.read",
                      conn.read_batch_start_us != 0 ? conn.read_batch_start_us
                                                    : admit_start_us,
                      admit_start_us);
    }

    // Admission control, cheapest checks first; every rejection is an
    // explicit retriable busy frame, never an unbounded queue.
    if (draining.load(std::memory_order_relaxed)) {
      shed_locked(conn, header.request_id, busy_reason::draining);
      return;
    }
    if (conn.inflight >= config.max_inflight_per_connection) {
      shed_locked(conn, header.request_id, busy_reason::connection_inflight);
      return;
    }
    if (conn.inflight_bytes + payload.size() >
        config.max_inflight_bytes_per_connection) {
      shed_locked(conn, header.request_id, busy_reason::connection_bytes);
      return;
    }
    const bool feedback = header.lane == serve::lane_class::feedback;
    const std::size_t budget =
        feedback ? config.max_inflight
                 : config.max_inflight - config.feedback_reserve;
    if (tickets.size() >= budget) {
      shed_locked(conn, header.request_id, busy_reason::server_busy);
      return;
    }

    auto traces = std::make_unique<data::trace_dataset>();
    request_info info;
    const std::uint64_t decode_start_us = traced ? obs::trace_clock_us() : 0;
    try {
      fault::trigger("net.decode");
      info = decode_request(payload, *traces);
    } catch (const std::exception& e) {
      protocol_error_locked(conn, header.request_id, error_code::decode_error,
                            e.what());
      return;
    }
    if (traced) {
      record_net_span(*ring, tctx.trace_id, tctx.parent_span, "net.decode",
                      decode_start_us, obs::trace_clock_us());
    }

    serve::readout_request request;
    request.qubit = info.qubit;
    request.traces = traces.get();
    request.engine = info.engine;
    request.deadline_seconds = info.deadline_seconds;
    request.lane = header.lane;
    if (traced) {
      request.trace_id = tctx.trace_id;
      request.trace_parent = tctx.parent_span;
    }
    std::optional<serve::ticket> ticket;
    try {
      // May execute the whole request inline (workerless pool) — the
      // completion doorbell only touches the completion queue, and the
      // completion thread re-locks state_mutex_ after popping, so it cannot
      // observe the ticket before the registration below.
      ticket = server.try_submit(request);
    } catch (const std::exception& e) {
      // Semantically invalid (bad qubit, missing engine path): a protocol
      // contract violation, handled like any malformed frame.
      protocol_error_locked(conn, header.request_id, error_code::decode_error,
                            e.what());
      return;
    }
    if (!ticket) {
      shed_locked(conn, header.request_id, busy_reason::server_busy);
      return;
    }
    inflight_ticket entry;
    entry.conn_id = conn.id;
    entry.request_id = header.request_id;
    entry.payload_bytes = payload.size();
    entry.engine = info.engine;
    entry.lane = header.lane;
    entry.traces = std::move(traces);
    if (traced) {
      entry.trace_id = tctx.trace_id;
      entry.trace_parent = tctx.parent_span;
    }
    tickets.emplace(ticket->id, std::move(entry));
    conn.requests[header.request_id] = ticket->id;
    ++conn.inflight;
    conn.inflight_bytes += payload.size();
    ++conn.lane_admitted[static_cast<std::size_t>(header.lane)];
    admitted_cell->inc();
    inflight_cell->set(static_cast<double>(tickets.size()));
    if (traced) {
      record_net_span(*ring, tctx.trace_id, tctx.parent_span, "net.admit",
                      admit_start_us, obs::trace_clock_us());
    }
  }

  void shed_locked(connection& conn, std::uint64_t request_id,
                   busy_reason reason) {
    shed_cells[static_cast<std::size_t>(reason)]->inc();
    queue_frame_locked(conn,
                       encode_busy(request_id, reason, conn_version(conn)));
  }

  /// Typed error frame, then close exactly this connection (reads stop now;
  /// the frame flushes before the fd closes).
  void protocol_error_locked(connection& conn, std::uint64_t request_id,
                             error_code code, const std::string& message) {
    malformed_cells[static_cast<std::size_t>(code)]->inc();
    queue_frame_locked(
        conn, encode_error(request_id, code, message, conn_version(conn)));
    queue_frame_locked(
        conn, encode_control(frame_type::goodbye, 0, conn_version(conn)));
    conn.closing = true;
    conn.evict = true;
  }

  void queue_frame_locked(connection& conn, std::vector<std::uint8_t> bytes) {
    if (conn.write_queue.empty()) {
      conn.last_write_progress_at = clock.seconds();
    }
    conn.write_queue_bytes += bytes.size();
    conn.queued_bytes_total += bytes.size();
    conn.write_queue.push_back(std::move(bytes));
    frames_out_cell->inc();
    if (conn.write_queue_bytes > config.max_write_queue_bytes) {
      // The client is not draining responses; its queue must not grow the
      // server. Evict — reconciliation happens at close.
      conn.closing = true;
      conn.evict = true;
    }
  }

  void handle_writable(std::uint64_t conn_id) {
    bool close_now = false;
    {
      const std::lock_guard lock(state_mutex);
      const auto it = conns.find(conn_id);
      if (it == conns.end()) return;
      close_now = !flush_writes_locked(*it->second);
      if (close_now) it->second->evict = true;
    }
    if (close_now) close_connection(conn_id, /*evicted=*/true);
  }

  /// Writes as much of the queue as the socket accepts. Returns false when
  /// the connection must be evicted (write error / injected fault).
  bool flush_writes_locked(connection& conn) {
    try {
      if (fault::trigger("net.write") == fault::action::drop) {
        return true;  // skip this flush round — a stalled sender
      }
    } catch (const std::exception&) {
      return false;
    }
    while (!conn.write_queue.empty()) {
      const std::vector<std::uint8_t>& front = conn.write_queue.front();
      const std::size_t remaining = front.size() - conn.write_offset;
      const ssize_t n = ::send(conn.fd, front.data() + conn.write_offset,
                               remaining, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          complete_write_spans_locked(conn);  // earlier frames may be out
          return true;
        }
        if (errno == EINTR) continue;
        return false;
      }
      bytes_out_cell->inc(static_cast<std::uint64_t>(n));
      conn.write_queue_bytes -= static_cast<std::size_t>(n);
      conn.flushed_bytes_total += static_cast<std::uint64_t>(n);
      conn.write_offset += static_cast<std::size_t>(n);
      conn.last_write_progress_at = clock.seconds();
      if (conn.write_offset == front.size()) {
        conn.write_queue.pop_front();
        conn.write_offset = 0;
      }
    }
    complete_write_spans_locked(conn);
    return true;
  }

  /// Emits net.write spans whose response bytes have fully left the socket
  /// buffer (flushed_bytes_total reached the target stamped at queue time).
  void complete_write_spans_locked(connection& conn) {
    if (conn.write_spans.empty()) return;
    obs::trace_ring* ring = trace_sink();
    const std::uint64_t now_us =
        ring != nullptr ? obs::trace_clock_us() : 0;
    std::erase_if(conn.write_spans, [&](const connection::write_span& ws) {
      if (conn.flushed_bytes_total < ws.target) return false;
      if (ring != nullptr) {
        record_net_span(*ring, ws.trace_id, ws.parent_span, "net.write",
                        ws.start_us, now_us);
      }
      return true;
    });
  }

  void enforce_deadlines() {
    const double now = clock.seconds();
    std::vector<std::uint64_t> to_evict;
    {
      const std::lock_guard lock(state_mutex);
      for (auto& [id, conn] : conns) {
        if (conn->closing) continue;
        if (config.read_idle_seconds > 0.0 &&
            now - conn->last_read_at > config.read_idle_seconds) {
          to_evict.push_back(id);  // slow loris: trickling or silent
          continue;
        }
        if (config.write_stall_seconds > 0.0 &&
            !conn->write_queue.empty() &&
            now - conn->last_write_progress_at > config.write_stall_seconds) {
          to_evict.push_back(id);  // reader stopped reading
        }
      }
    }
    for (const std::uint64_t id : to_evict) {
      close_connection(id, /*evicted=*/true);
    }
  }

  /// Closes connections that were marked closing once their write queue is
  /// flushed (or immediately when flushing cannot progress anyway).
  void finish_closing_connections() {
    std::vector<std::pair<std::uint64_t, bool>> done;
    {
      const std::lock_guard lock(state_mutex);
      for (auto& [id, conn] : conns) {
        if (!conn->closing) continue;
        flush_writes_locked(*conn);
        if (conn->write_queue.empty()) done.emplace_back(id, conn->evict);
      }
    }
    for (const auto& [id, evict] : done) close_connection(id, evict);
  }

  /// Removes a connection and reconciles its in-flight tickets: every one
  /// still unresolved is cancelled through the server (the completion thread
  /// then claims and drops the result, counted). Never called with
  /// state_mutex_ held.
  void close_connection(std::uint64_t conn_id, bool evicted) {
    std::unique_ptr<connection> conn;
    std::vector<std::uint64_t> to_cancel;
    {
      const std::lock_guard lock(state_mutex);
      const auto it = conns.find(conn_id);
      if (it == conns.end()) return;
      conn = std::move(it->second);
      conns.erase(it);
      for (const auto& [request_id, ticket_id] : conn->requests) {
        if (tickets.find(ticket_id) != tickets.end()) {
          to_cancel.push_back(ticket_id);
        }
      }
      // Cancel under the same lock that guards ticket consumption: entries
      // still in `tickets` are provably unconsumed (the completion thread
      // waits and erases under this mutex), so cancel() cannot throw for a
      // consumed ticket; false (already done) is fine — the completion
      // thread will drop the result on arrival.
      for (const std::uint64_t ticket_id : to_cancel) {
        server.cancel(serve::ticket{ticket_id});
      }
      closed_cell->inc();
      if (evicted || conn->evict) evicted_cell->inc();
      open_conns_cell->set(
          static_cast<double>(conns.size() + pending_accepts.size()));
    }
    ::close(conn->fd);
  }

  // --- completion thread --------------------------------------------------

  void completion_loop() {
    for (;;) {
      std::uint64_t ticket_id = 0;
      {
        std::unique_lock lock(completion_mutex);
        completion_ready.wait(lock, [this] {
          return stopping.load(std::memory_order_relaxed) ||
                 !done_queue.empty();
        });
        if (done_queue.empty()) return;  // stopping and drained
        ticket_id = done_queue.front();
        done_queue.pop_front();
      }
      try {
        // delay mode stalls the response path while admission quotas fill —
        // deterministic fodder for the shedding tests.
        fault::trigger("net.complete");
      } catch (const std::exception&) {
        // A throwing completion site must not lose the ticket.
      }
      process_completion(ticket_id);
      wake_poll();
    }
  }

  void process_completion(std::uint64_t ticket_id) {
    const std::lock_guard lock(state_mutex);
    const auto it = tickets.find(ticket_id);
    if (it == tickets.end()) return;  // foreign ticket: not ours to consume
    inflight_ticket entry = std::move(it->second);
    tickets.erase(it);
    serve::readout_result result;
    try {
      // The doorbell fired, so the ticket is done: wait() returns
      // immediately. Consuming under state_mutex_ is what makes the
      // disconnect path's cancel() race-free (see close_connection).
      server.wait(serve::ticket{ticket_id}, result);
    } catch (const std::exception&) {
      // A failed request rethrows its shard error; the client gets the
      // terminal status instead of the exception text.
      result.status = serve::request_status::failed;
      result.engine = entry.engine;
      result.states.clear();
      result.registers.clear();
      result.logits.clear();
    }
    inflight_cell->set(static_cast<double>(tickets.size()));
    const auto conn_it = conns.find(entry.conn_id);
    if (conn_it == conns.end()) {
      // Disconnect reconciliation: the client left; the result is dropped,
      // counted, and the ticket is still consumed — never leaked.
      dropped_cell->inc();
      return;
    }
    connection& conn = *conn_it->second;
    --conn.inflight;
    conn.inflight_bytes -= entry.payload_bytes;
    const auto req_it = conn.requests.find(entry.request_id);
    if (req_it != conn.requests.end() && req_it->second == ticket_id) {
      conn.requests.erase(req_it);
    }
    lane_seconds[static_cast<std::size_t>(entry.lane)]->record(
        result.latency_seconds);
    const std::uint64_t write_start_us =
        entry.trace_id != 0 && trace_sink() != nullptr ? obs::trace_clock_us()
                                                       : 0;
    queue_frame_locked(
        conn, encode_response(entry.request_id, result, conn_version(conn)));
    responses_cell->inc();
    if (write_start_us != 0) {
      // The net.write span runs from response-queued to the flush that
      // drains it off the write queue (completed in flush_writes_locked).
      conn.write_spans.push_back({entry.trace_id, entry.trace_parent,
                                  write_start_us, conn.queued_bytes_total});
    }
  }

  // --- shutdown -----------------------------------------------------------

  void shutdown() {
    if (shut_down) return;
    shut_down = true;
    draining.store(true, std::memory_order_relaxed);
    // Phase 1: resolve every in-flight ticket. New requests are shed with
    // busy(draining); cancels and pings still work. Bounded by the drain
    // timeout, then force-cancel — every ticket still resolves (cancelled),
    // so the wait below terminates.
    const double deadline = clock.seconds() + config.drain_timeout_seconds;
    bool forced = false;
    for (;;) {
      {
        const std::lock_guard lock(state_mutex);
        if (tickets.empty()) break;
        if (!forced && clock.seconds() >= deadline) {
          forced = true;
          for (const auto& [ticket_id, entry] : tickets) {
            server.cancel(serve::ticket{ticket_id});
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Phase 2: goodbye frames, then give the poll loop one drain window to
    // flush the write queues.
    {
      const std::lock_guard lock(state_mutex);
      for (auto& [id, conn] : conns) {
        if (!conn->closing) {
          queue_frame_locked(*conn, encode_control(frame_type::goodbye, 0,
                                                   conn_version(*conn)));
        }
      }
    }
    wake_poll();
    const double flush_deadline =
        clock.seconds() + config.drain_timeout_seconds;
    for (;;) {
      bool flushed = true;
      {
        const std::lock_guard lock(state_mutex);
        for (const auto& [id, conn] : conns) {
          if (!conn->write_queue.empty()) flushed = false;
        }
      }
      if (flushed || clock.seconds() >= flush_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Phase 3: stop the threads. The poll loop exits once no writes are
    // pending (it closes every socket on the way out); the completion
    // thread exits when its queue is empty.
    stopping.store(true, std::memory_order_relaxed);
    wake_poll();
    completion_ready.notify_all();
    acceptor_thread.join();
    poll_thread.join();
    completion_thread.join();
    // The registry may outlive the front end (shared backend): unbind the
    // pull collector before the impl it captures goes away.
    metrics->remove_collector(collector_id);
    // The server outlives the front end; detach the doorbell so it cannot
    // call into a destroyed impl. Every net ticket was consumed above, and
    // the front end was the sole submitter by contract.
    server.set_on_complete({});
  }

  front_end_stats stats() const {
    const std::lock_guard lock(state_mutex);
    front_end_stats s;
    s.connections_accepted = accepted_cell->value();
    s.connections_rejected = rejected_cell->value();
    s.connections_closed = closed_cell->value();
    s.connections_evicted = evicted_cell->value();
    s.frames_received = frames_in_cell->value();
    s.frames_sent = frames_out_cell->value();
    s.bytes_received = bytes_in_cell->value();
    s.bytes_sent = bytes_out_cell->value();
    s.requests_admitted = admitted_cell->value();
    s.responses_sent = responses_cell->value();
    for (const obs::counter* cell : shed_cells) {
      s.busy_rejections += cell->value();
    }
    for (const obs::counter* cell : malformed_cells) {
      s.malformed_frames += cell->value();
    }
    s.results_dropped = dropped_cell->value();
    s.cancels_received = cancels_cell->value();
    s.pings_received = pings_cell->value();
    s.pongs_sent = pongs_cell->value();
    s.open_connections = conns.size() + pending_accepts.size();
    s.inflight = tickets.size();
    return s;
  }

  std::vector<connection_info> connection_table() const {
    const std::lock_guard lock(state_mutex);
    const double now = clock.seconds();
    std::vector<connection_info> out;
    out.reserve(conns.size());
    for (const auto& [id, conn] : conns) {
      connection_info info;
      info.id = id;
      info.protocol_version = conn->version;
      info.inflight = conn->inflight;
      info.inflight_bytes = conn->inflight_bytes;
      info.write_queue_bytes = conn->write_queue_bytes;
      info.admitted_bulk = conn->lane_admitted[0];
      info.admitted_feedback = conn->lane_admitted[1];
      info.age_seconds = now - conn->accepted_at;
      info.idle_seconds = now - conn->last_read_at;
      info.closing = conn->closing;
      out.push_back(info);
    }
    return out;
  }
};

tcp_front_end::tcp_front_end(serve::readout_server& server,
                             front_end_config config)
    : impl_(std::make_unique<impl>(server, std::move(config))) {}

tcp_front_end::~tcp_front_end() {
  try {
    impl_->shutdown();
  } catch (const std::exception& e) {
    log_warn("tcp_front_end: shutdown failed in destructor: ", e.what());
  }
}

std::uint16_t tcp_front_end::port() const noexcept {
  return impl_->bound_port;
}

void tcp_front_end::shutdown() { impl_->shutdown(); }

front_end_stats tcp_front_end::stats() const { return impl_->stats(); }

std::vector<connection_info> tcp_front_end::connections() const {
  return impl_->connection_table();
}

bool tcp_front_end::draining() const noexcept {
  return impl_->draining.load(std::memory_order_relaxed);
}

const obs::metric_registry& tcp_front_end::metrics() const noexcept {
  return *impl_->metrics;
}

}  // namespace klinq::net
