#include "klinq/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "klinq/common/error.hpp"

namespace klinq::net {

client::client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  KLINQ_REQUIRE(fd_ >= 0, "net::client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    KLINQ_REQUIRE(false, "net::client: host is not a valid IPv4 address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    KLINQ_REQUIRE(false, "net::client: connect() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

client::~client() { close(); }

client::client(client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      read_buffer_(std::move(other.read_buffer_)) {}

client& client::operator=(client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    read_buffer_ = std::move(other.read_buffer_);
  }
  return *this;
}

void client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t client::send_request(const request_info& info,
                                   const data::trace_dataset& traces,
                                   serve::lane_class lane) {
  const std::uint64_t id = next_request_id_++;
  send_request_with_id(id, info, traces, lane);
  return id;
}

void client::send_request_with_id(std::uint64_t request_id,
                                  const request_info& info,
                                  const data::trace_dataset& traces,
                                  serve::lane_class lane) {
  send_bytes(encode_request(request_id, info, lane, traces));
}

void client::send_cancel(std::uint64_t request_id) {
  send_bytes(encode_control(frame_type::cancel, request_id));
}

void client::send_ping(std::uint64_t request_id) {
  send_bytes(encode_control(frame_type::ping, request_id));
}

void client::send_goodbye() {
  send_bytes(encode_control(frame_type::goodbye, 0));
}

void client::send_bytes(const std::uint8_t* data, std::size_t size) {
  KLINQ_REQUIRE(fd_ >= 0, "net::client: send on a closed client");
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      KLINQ_REQUIRE(false, "net::client: send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<client_frame> client::read_frame(double timeout_seconds) {
  KLINQ_REQUIRE(fd_ >= 0, "net::client: read on a closed client");
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>(
      (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::uint8_t chunk[4096];
  for (;;) {
    if (read_buffer_.size() >= kHeaderSize) {
      client_frame frame;
      const header_verdict verdict =
          decode_header(read_buffer_.data(), frame.header);
      KLINQ_REQUIRE(verdict == header_verdict::ok,
                    "net::client: malformed frame header from server");
      const std::size_t frame_size = kHeaderSize + frame.header.payload_size;
      if (read_buffer_.size() >= frame_size) {
        frame.payload.assign(
            read_buffer_.begin() +
                static_cast<std::ptrdiff_t>(kHeaderSize),
            read_buffer_.begin() + static_cast<std::ptrdiff_t>(frame_size));
        read_buffer_.erase(
            read_buffer_.begin(),
            read_buffer_.begin() + static_cast<std::ptrdiff_t>(frame_size));
        return frame;
      }
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return std::nullopt;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      return std::nullopt;
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
  }
}

namespace {
bool is_reply(frame_type type) noexcept {
  return type == frame_type::response || type == frame_type::busy ||
         type == frame_type::error;
}
}  // namespace

std::optional<client_frame> client::read_reply(std::uint64_t request_id,
                                               double timeout_seconds) {
  for (auto it = stashed_replies_.begin(); it != stashed_replies_.end();
       ++it) {
    if (it->header.request_id == request_id) {
      client_frame frame = std::move(*it);
      stashed_replies_.erase(it);
      return frame;
    }
  }
  for (;;) {
    std::optional<client_frame> frame = read_frame(timeout_seconds);
    if (!frame) return std::nullopt;
    if (!is_reply(frame->header.type)) continue;  // pong / goodbye
    if (frame->header.request_id == request_id) return frame;
    stashed_replies_.push_back(std::move(*frame));
  }
}

}  // namespace klinq::net
