#include "klinq/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "klinq/common/error.hpp"

namespace klinq::net {

namespace {

/// Keepalive pings live in their own id space (top bit set) so they can
/// never collide with request ids handed out by send_request.
constexpr std::uint64_t kKeepalivePingBase = std::uint64_t{1} << 63;

bool is_reply(frame_type type) noexcept {
  return type == frame_type::response || type == frame_type::busy ||
         type == frame_type::error;
}

}  // namespace

client::client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  KLINQ_REQUIRE(fd_ >= 0, "net::client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    KLINQ_REQUIRE(false, "net::client: host is not a valid IPv4 address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    KLINQ_REQUIRE(false, "net::client: connect() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

client::~client() { close(); }

client::client(client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      read_buffer_(std::move(other.read_buffer_)),
      stashed_replies_(std::move(other.stashed_replies_)),
      traces_(std::exchange(other.traces_, nullptr)),
      sampler_(other.sampler_.rate()),
      pending_traces_(std::move(other.pending_traces_)),
      keepalive_interval_seconds_(other.keepalive_interval_seconds_),
      keepalive_timeout_seconds_(other.keepalive_timeout_seconds_),
      next_ping_id_(other.next_ping_id_),
      awaiting_pong_id_(other.awaiting_pong_id_),
      last_activity_at_(other.last_activity_at_),
      pong_deadline_(other.pong_deadline_) {}

client& client::operator=(client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    read_buffer_ = std::move(other.read_buffer_);
    stashed_replies_ = std::move(other.stashed_replies_);
    traces_ = std::exchange(other.traces_, nullptr);
    sampler_ = obs::trace_sampler(other.sampler_.rate());
    pending_traces_ = std::move(other.pending_traces_);
    keepalive_interval_seconds_ = other.keepalive_interval_seconds_;
    keepalive_timeout_seconds_ = other.keepalive_timeout_seconds_;
    next_ping_id_ = other.next_ping_id_;
    awaiting_pong_id_ = other.awaiting_pong_id_;
    last_activity_at_ = other.last_activity_at_;
    pong_deadline_ = other.pong_deadline_;
  }
  return *this;
}

void client::enable_tracing(obs::trace_ring* ring, double sample_rate) {
  KLINQ_REQUIRE(ring != nullptr, "net::client: enable_tracing needs a ring");
  KLINQ_REQUIRE(sample_rate >= 0.0 && sample_rate <= 1.0,
                "net::client: sample_rate must be in [0, 1]");
  traces_ = ring;
  sampler_ = obs::trace_sampler(sample_rate);
}

void client::enable_keepalive(double interval_seconds,
                              double timeout_seconds) {
  KLINQ_REQUIRE(interval_seconds > 0.0,
                "net::client: keepalive interval must be positive");
  KLINQ_REQUIRE(timeout_seconds > 0.0,
                "net::client: keepalive timeout must be positive");
  keepalive_interval_seconds_ = interval_seconds;
  keepalive_timeout_seconds_ = timeout_seconds;
  awaiting_pong_id_ = 0;
  last_activity_at_ = std::chrono::steady_clock::now();
}

void client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t client::send_request(const request_info& info,
                                   const data::trace_dataset& traces,
                                   serve::lane_class lane) {
  const std::uint64_t id = next_request_id_++;
  send_request_with_id(id, info, traces, lane);
  return id;
}

void client::send_request_with_id(std::uint64_t request_id,
                                  const request_info& info,
                                  const data::trace_dataset& traces,
                                  serve::lane_class lane) {
  trace_context tctx{};
  if (traces_ != nullptr && traces_->armed() && sampler_.sample()) {
    tctx.trace_id = traces_->next_trace_id();
    tctx.parent_span = traces_->next_span_id();  // the RTT span's id
    pending_traces_.push_back({request_id, tctx.trace_id, tctx.parent_span,
                               obs::trace_clock_us()});
  }
  send_bytes(encode_request(request_id, info, lane, traces,
                            tctx.trace_id != 0 ? &tctx : nullptr));
}

void client::send_cancel(std::uint64_t request_id) {
  send_bytes(encode_control(frame_type::cancel, request_id));
}

void client::send_ping(std::uint64_t request_id) {
  send_bytes(encode_control(frame_type::ping, request_id));
}

void client::send_goodbye() {
  send_bytes(encode_control(frame_type::goodbye, 0));
}

void client::send_bytes(const std::uint8_t* data, std::size_t size) {
  KLINQ_REQUIRE(fd_ >= 0, "net::client: send on a closed client");
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      KLINQ_REQUIRE(false, "net::client: send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<client_frame> client::read_frame(double timeout_seconds) {
  KLINQ_REQUIRE(fd_ >= 0, "net::client: read on a closed client");
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  std::uint8_t chunk[4096];
  for (;;) {
    if (read_buffer_.size() >= kHeaderSize) {
      client_frame frame;
      const header_verdict verdict =
          decode_header(read_buffer_.data(), frame.header);
      KLINQ_REQUIRE(verdict == header_verdict::ok,
                    "net::client: malformed frame header from server");
      const std::size_t frame_size = kHeaderSize + frame.header.payload_size;
      if (read_buffer_.size() >= frame_size) {
        frame.payload.assign(
            read_buffer_.begin() +
                static_cast<std::ptrdiff_t>(kHeaderSize),
            read_buffer_.begin() + static_cast<std::ptrdiff_t>(frame_size));
        read_buffer_.erase(
            read_buffer_.begin(),
            read_buffer_.begin() + static_cast<std::ptrdiff_t>(frame_size));
        if (frame.header.type == frame_type::pong &&
            frame.header.request_id == awaiting_pong_id_ &&
            awaiting_pong_id_ != 0) {
          // Keepalive pong: consumed internally, never surfaced.
          awaiting_pong_id_ = 0;
          last_activity_at_ = clock::now();
          continue;
        }
        maybe_record_rtt(frame);
        return frame;
      }
    }
    const auto now = clock::now();
    if (now >= deadline) return std::nullopt;
    double recv_timeout =
        std::chrono::duration<double>(deadline - now).count();
    if (keepalive_interval_seconds_ > 0.0) {
      if (awaiting_pong_id_ != 0) {
        if (now >= pong_deadline_) {
          // Half-dead server: fail every pending request rather than letting
          // callers block until their own timeouts.
          close();
          throw io_error(
              "net::client: keepalive pong missed its deadline; connection "
              "closed, pending requests failed");
        }
        recv_timeout = std::min(
            recv_timeout,
            std::chrono::duration<double>(pong_deadline_ - now).count());
      } else {
        const auto ping_due =
            last_activity_at_ +
            std::chrono::duration_cast<clock::duration>(
                std::chrono::duration<double>(keepalive_interval_seconds_));
        if (now >= ping_due) {
          awaiting_pong_id_ = kKeepalivePingBase | ++next_ping_id_;
          send_ping(awaiting_pong_id_);
          pong_deadline_ =
              now + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(
                            keepalive_timeout_seconds_));
          recv_timeout = std::min(recv_timeout, keepalive_timeout_seconds_);
        } else {
          recv_timeout = std::min(
              recv_timeout,
              std::chrono::duration<double>(ping_due - now).count());
        }
      }
    }
    recv_timeout = std::max(recv_timeout, 1e-3);  // 0 would block forever
    timeval tv{};
    tv.tv_sec = static_cast<long>(recv_timeout);
    tv.tv_usec = static_cast<long>(
        (recv_timeout - std::floor(recv_timeout)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return std::nullopt;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Recv window elapsed; loop to re-check the overall deadline and the
        // keepalive schedule (the window may have been shortened for either).
        continue;
      }
      return std::nullopt;
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
    last_activity_at_ = clock::now();
  }
}

void client::maybe_record_rtt(const client_frame& frame) {
  if (traces_ == nullptr || pending_traces_.empty() ||
      !is_reply(frame.header.type)) {
    return;
  }
  for (auto it = pending_traces_.begin(); it != pending_traces_.end(); ++it) {
    if (it->request_id != frame.header.request_id) continue;
    obs::trace_span span;
    span.trace_id = it->trace_id;
    span.span_id = it->span_id;
    span.parent_span = 0;  // the trace root
    span.start_us = it->start_us;
    const std::uint64_t now_us = obs::trace_clock_us();
    span.duration_us = now_us > it->start_us ? now_us - it->start_us : 0;
    span.name = "client.rtt";
    span.category = "client";
    traces_->record(std::move(span));
    pending_traces_.erase(it);
    return;
  }
}

std::optional<client_frame> client::read_reply(std::uint64_t request_id,
                                               double timeout_seconds) {
  for (auto it = stashed_replies_.begin(); it != stashed_replies_.end();
       ++it) {
    if (it->header.request_id == request_id) {
      client_frame frame = std::move(*it);
      stashed_replies_.erase(it);
      return frame;
    }
  }
  for (;;) {
    std::optional<client_frame> frame = read_frame(timeout_seconds);
    if (!frame) return std::nullopt;
    if (!is_reply(frame->header.type)) continue;  // pong / goodbye
    if (frame->header.request_id == request_id) return frame;
    stashed_replies_.push_back(std::move(*frame));
  }
}

}  // namespace klinq::net
