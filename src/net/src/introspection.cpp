#include "klinq/net/introspection.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>

#include "klinq/common/error.hpp"
#include "klinq/obs/exposition.hpp"

namespace klinq::net {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

std::string render_front_end(const tcp_front_end& fe) {
  std::string out;
  const front_end_stats s = fe.stats();
  out += "front_end:\n";
  appendf(out, "  open_connections=%zu inflight=%zu draining=%s\n",
          s.open_connections, s.inflight, fe.draining() ? "yes" : "no");
  appendf(out,
          "  accepted=%" PRIu64 " rejected=%" PRIu64 " closed=%" PRIu64
          " evicted=%" PRIu64 "\n",
          s.connections_accepted, s.connections_rejected,
          s.connections_closed, s.connections_evicted);
  appendf(out,
          "  frames rx=%" PRIu64 " tx=%" PRIu64 " bytes rx=%" PRIu64
          " tx=%" PRIu64 "\n",
          s.frames_received, s.frames_sent, s.bytes_received, s.bytes_sent);
  appendf(out,
          "  admitted=%" PRIu64 " responded=%" PRIu64 " busy=%" PRIu64
          " malformed=%" PRIu64 " dropped=%" PRIu64 "\n",
          s.requests_admitted, s.responses_sent, s.busy_rejections,
          s.malformed_frames, s.results_dropped);
  appendf(out, "  pings=%" PRIu64 " pongs=%" PRIu64 " cancels=%" PRIu64 "\n",
          s.pings_received, s.pongs_sent, s.cancels_received);

  out += "connections:\n";
  out +=
      "  id        ver  inflight  inflight_bytes  write_queue  bulk      "
      "feedback  age_s     idle_s    closing\n";
  for (const connection_info& c : fe.connections()) {
    appendf(out,
            "  %-8" PRIu64 "  v%-2u  %-8zu  %-14zu  %-11zu  %-8" PRIu64
            "  %-8" PRIu64 "  %-8.1f  %-8.1f  %s\n",
            c.id, static_cast<unsigned>(c.protocol_version), c.inflight,
            c.inflight_bytes, c.write_queue_bytes, c.admitted_bulk,
            c.admitted_feedback, c.age_seconds, c.idle_seconds,
            c.closing ? "yes" : "no");
  }
  return out;
}

std::string render_recorder(const obs::flight_recorder& recorder) {
  std::string out = "flight_recorder:\n";
  appendf(out, "  captured=%" PRIu64 "\n", recorder.captured());
  for (const obs::flight_record& r : recorder.records()) {
    appendf(out, "  [%s] id=%" PRIu64 " total=%.6fs", r.kind.c_str(), r.id,
            r.total_seconds);
    for (const obs::flight_stage& stage : r.stages) {
      appendf(out, " %s=%.6fs", stage.name.c_str(), stage.seconds);
    }
    for (const auto& [key, value] : r.attributes) {
      appendf(out, " %s=%s", key.c_str(), value.c_str());
    }
    out += "\n";
  }
  return out;
}

std::string render_traces(const obs::trace_ring& ring) {
  std::string out;
  appendf(out,
          "tracez: armed=%s recorded=%" PRIu64 " dropped=%" PRIu64 "\n",
          ring.armed() ? "yes" : "no", ring.recorded(), ring.dropped());
  for (const obs::trace_ring::trace_view& view : ring.traces()) {
    appendf(out, "trace %016" PRIx64 "  spans=%zu  duration=%.3fms\n",
            view.trace_id, view.spans.size(), view.duration_us / 1e3);
    for (const obs::trace_span& span : view.spans) {
      appendf(out, "  +%8.3fms  %-12s  %7.3fms  [%s]\n",
              (span.start_us - view.start_us) / 1e3, span.name.c_str(),
              span.duration_us / 1e3, span.category.c_str());
    }
  }
  return out;
}

}  // namespace

void install_introspection_handlers(obs::http_server& http,
                                    introspection_config config) {
  KLINQ_REQUIRE(config.metrics != nullptr,
                "net::install_introspection_handlers: metrics is required");
  // The handler table owns one shared copy of the config; handlers run on
  // the HTTP poll thread, so everything captured must stay valid for the
  // server's lifetime (borrowed pointers — documented in the header).
  auto shared = std::make_shared<introspection_config>(std::move(config));

  http.add_handler("/metrics", [shared](const obs::http_request&) {
    obs::http_response res;
    res.content_type = "text/plain; version=0.0.4; charset=utf-8";
    res.body = obs::prometheus_text(shared->metrics->snapshot());
    return res;
  });

  http.add_handler("/healthz", [shared](const obs::http_request&) {
    std::string reasons;
    if (shared->front_end != nullptr && shared->front_end->draining()) {
      reasons += "draining\n";
    }
    for (const auto& [name, probe] : shared->unhealthy_when) {
      if (probe()) reasons += name + "\n";
    }
    obs::http_response res;
    if (reasons.empty()) {
      res.body = "ok\n";
    } else {
      res.status = 503;
      res.body = "unhealthy\n" + reasons;
    }
    return res;
  });

  http.add_handler("/statusz", [shared](const obs::http_request&) {
    obs::http_response res;
    std::string& out = res.body;
    out += "klinq statusz\n";
    appendf(out, "trace_clock_us=%" PRIu64 "\n\n", obs::trace_clock_us());
    if (shared->front_end != nullptr) {
      out += render_front_end(*shared->front_end);
      out += "\n";
    }
    if (shared->recorder != nullptr) {
      out += render_recorder(*shared->recorder);
      out += "\n";
    }
    for (const auto& [name, section] : shared->sections) {
      out += name + ":\n" + section() + "\n";
    }
    return res;
  });

  http.add_handler("/tracez", [shared](const obs::http_request&) {
    obs::http_response res;
    if (shared->traces == nullptr) {
      res.body = "tracez: tracing off (no ring configured)\n";
    } else {
      res.body = render_traces(*shared->traces);
    }
    return res;
  });
}

}  // namespace klinq::net
