// Teacher model: the paper's large per-qubit FNN (§III-A).
//
// Architecture 2N-1000-500-250-1 trained on raw flattened I/Q traces
// (1000 inputs at 1 µs). Inputs are z-score standardized with statistics
// fitted on the training set — the teacher runs offline in software, so it
// is free to use exact division (unlike the FPGA students).
//
// The same trainer doubles as the "Baseline FNN [3]" of Table I: the
// baseline *is* this architecture evaluated as an independent per-qubit
// discriminator, which is also why the paper quotes the baseline at 1.63 M
// parameters = one teacher.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/dsp/normalization.hpp"
#include "klinq/nn/network.hpp"

namespace klinq::kd {

struct teacher_config {
  std::vector<std::size_t> hidden = {1000, 500, 250};
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  /// Mild decoupled L2 + trace-noise augmentation keep the 1.63 M-parameter
  /// teacher from memorizing modest shot counts.
  float weight_decay = 1e-3f;
  float augment_noise_sigma = 0.25f;
  float lr_decay = 0.8f;
  std::uint64_t seed = 1;
};

/// A trained teacher: input standardizer + network. The standardizer is part
/// of the model — logits are only meaningful for identically scaled inputs.
class teacher_model {
 public:
  teacher_model() = default;
  teacher_model(nn::network net, dsp::feature_normalizer input_norm);

  const nn::network& net() const noexcept { return net_; }
  const dsp::feature_normalizer& input_norm() const noexcept {
    return input_norm_;
  }

  std::size_t parameter_count() const noexcept {
    return net_.parameter_count();
  }

  /// Raw logit for one flattened trace (standardizes internally).
  float logit(std::span<const float> trace) const;

  /// Hard state decision (logit >= 0).
  bool predict_state(std::span<const float> trace) const;

  /// Logits for every row — the distillation soft-label source.
  std::vector<float> logits_for(const data::trace_dataset& dataset) const;

  /// Assignment accuracy against dataset labels.
  double accuracy(const data::trace_dataset& dataset) const;

  void save(std::ostream& out) const;
  static teacher_model load(std::istream& in);

 private:
  /// Standardizes a whole dataset into a feature matrix.
  la::matrix_f standardized(const data::trace_dataset& dataset) const;

  nn::network net_;
  dsp::feature_normalizer input_norm_;
};

/// Trains a teacher on one qubit's raw-trace dataset.
teacher_model train_teacher(const data::trace_dataset& train,
                            const teacher_config& config);

}  // namespace klinq::kd
