// Student distillation (paper §III-C/D).
//
// A student is the compact deployment unit: a feature pipeline (averaging +
// matched filter + power-of-two normalization) feeding a tiny FNN
// (2G+1)-16-8-1. Training minimizes the composite loss
//     L = α·L_CE(hard labels) + (1 − α)·L_KD(teacher soft labels)
// where the teacher logits are precomputed once per dataset.
//
// Setting α = 1 disables distillation (pure supervised training) — the
// ablation benches use this to quantify what knowledge transfer buys.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/dsp/feature_pipeline.hpp"
#include "klinq/nn/loss.hpp"
#include "klinq/nn/network.hpp"

namespace klinq::kd {

struct student_config {
  /// Averaging groups per quadrature: 15 → FNN-A (31 inputs),
  /// 100 → FNN-B (201 inputs).
  std::size_t groups_per_quadrature = 15;
  std::vector<std::size_t> hidden = {16, 8};
  bool use_matched_filter = true;
  dsp::norm_mode normalization = dsp::norm_mode::pow2_shift;
  nn::distillation_config distillation{};
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  float learning_rate = 2e-3f;
  /// Mild L2 keeps the 201-input FNN-B student from memorizing noise.
  float weight_decay = 1e-4f;
  float lr_decay = 0.97f;
  std::uint64_t seed = 7;
  /// Warm start (borrowed, may be null): initialize training from this
  /// network's weights instead of a fresh He-normal draw. The topology must
  /// match the config's. Used by the registry's background recalibration —
  /// readout drift moves the feature distribution gradually, so the
  /// pre-drift weights are a far better starting point than noise and
  /// converge in fewer epochs on the fresh calibration shots.
  const nn::network* warm_start = nullptr;
};

/// Reusable buffers for student_model::predict_batch: the network's panel +
/// plane arena (which the fused extract→logits path writes tiles into), plus
/// the feature matrix the unfused (KLINQ_FUSED=0) path materializes. Reusing
/// one scratch across calls of the same batch size makes evaluation
/// allocation-free.
struct student_scratch {
  la::matrix_f features;
  nn::inference_scratch net;
};


/// A deployable student: feature pipeline + compact network.
class student_model {
 public:
  student_model() = default;
  student_model(dsp::feature_pipeline pipeline, nn::network net);

  const dsp::feature_pipeline& pipeline() const noexcept { return pipeline_; }
  const nn::network& net() const noexcept { return net_; }

  std::size_t parameter_count() const noexcept {
    return net_.parameter_count();
  }

  /// Raw logit for one flattened trace.
  float logit(std::span<const float> trace,
              std::size_t samples_per_quadrature) const;

  /// Hard state decision (logit >= 0) — the FPGA's sign-bit readout.
  bool predict_state(std::span<const float> trace,
                     std::size_t samples_per_quadrature) const;

  /// Batched inference over a whole dataset: fused extract→FC→logits tiles
  /// (dsp::batch_extractor::extract_tile feeding the float plane kernels),
  /// parallelized over tile-aligned chunks. Writes one logit per dataset row
  /// into `logits_out`. Logits are invariant to batch size, chunking and
  /// worker count within the active float tier, and match logit() per trace
  /// to rounding tolerance (the single-shot path reduces in dot order).
  void predict_batch(const data::trace_dataset& dataset,
                     std::span<float> logits_out,
                     student_scratch& scratch) const;

  /// Convenience overload with internal scratch.
  std::vector<float> predict_batch(const data::trace_dataset& dataset) const;

  /// Serial float-path evaluation of dataset rows [row_begin, row_end)
  /// through caller-provided scratch: fused extract→FC→logits per 64-shot
  /// tile out of the scratch arenas, with logits_out[r - row_begin] for each
  /// row r. Bitwise-identical to predict_batch on the same rows and zero
  /// steady-state allocation once the scratch is warm — the serve engine's
  /// float shard executor.
  void predict_block(const data::trace_dataset& dataset, std::size_t row_begin,
                     std::size_t row_end, std::span<float> logits_out,
                     student_scratch& scratch) const;

  /// Lane-packed single-shot evaluation: one row drawn from each of `lanes`
  /// (possibly distinct) datasets, extracted into one shared feature-major
  /// panel and pushed through one plane-kernel tile. datasets[s]/rows[s]
  /// name lane s's trace; logits_out[s] receives its logit. Because the
  /// plane kernels are lane-invariant, each lane's logit is bitwise equal to
  /// predict_block() on that row alone — the serve coalescer's cross-request
  /// lane-pack executor leans on exactly that. Requires
  /// 0 < lanes <= nn::kernels::max_tile_lanes.
  void predict_lanes(const data::trace_dataset* const* datasets,
                     const std::size_t* rows, std::size_t lanes,
                     std::span<float> logits_out,
                     student_scratch& scratch) const;

  /// Assignment accuracy on a dataset (batched path).
  double accuracy(const data::trace_dataset& dataset) const;

  void save(std::ostream& out) const;
  static student_model load(std::istream& in);

 private:
  dsp::feature_pipeline pipeline_;
  nn::network net_;
};

/// Distills a student from precomputed teacher logits (one per train row).
/// Pass an empty span to train without distillation (hard labels only).
student_model distill_student(const data::trace_dataset& train,
                              std::span<const float> teacher_logits,
                              const student_config& config);

/// Network compression rate: 1 − student/teacher (paper §V-C).
double compression_rate(std::size_t teacher_params,
                        std::size_t student_params);

}  // namespace klinq::kd
