#include "klinq/kd/distiller.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <ostream>

#include "klinq/common/cpu_dispatch.hpp"
#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/common/stopwatch.hpp"
#include "klinq/common/thread_pool.hpp"
#include "klinq/dsp/batch_extractor.hpp"
#include "klinq/nn/kernels.hpp"
#include "klinq/nn/serialize.hpp"
#include "klinq/nn/trainer.hpp"

namespace klinq::kd {

student_model::student_model(dsp::feature_pipeline pipeline, nn::network net)
    : pipeline_(std::move(pipeline)), net_(std::move(net)) {
  KLINQ_REQUIRE(pipeline_.output_width() == net_.input_dim(),
                "student_model: pipeline width != network input");
}

float student_model::logit(std::span<const float> trace,
                           std::size_t samples_per_quadrature) const {
  thread_local std::vector<float> features;
  features.assign(pipeline_.output_width(), 0.0f);
  pipeline_.extract(trace, samples_per_quadrature, features);
  return net_.predict_logit(features);
}

bool student_model::predict_state(std::span<const float> trace,
                                  std::size_t samples_per_quadrature) const {
  return logit(trace, samples_per_quadrature) >= 0.0f;
}

void student_model::predict_batch(const data::trace_dataset& dataset,
                                  std::span<float> logits_out,
                                  student_scratch& scratch) const {
  KLINQ_REQUIRE(logits_out.size() == dataset.size(),
                "student_model::predict_batch: one logit per trace required");
  if (dataset.empty()) return;
  if (!fused_float_path_enabled()) {
    // Legacy two-phase path (A/B reference): materialize the feature matrix,
    // then the batched FC — bitwise-identical to the fused path because the
    // plane kernels are lane-invariant.
    dsp::batch_extractor(pipeline_).extract(dataset, scratch.features);
    net_.predict_logits(scratch.features, logits_out, scratch.net);
    return;
  }
  constexpr std::size_t kTile = nn::kernels::max_tile_lanes;
  const std::size_t tiles = (dataset.size() + kTile - 1) / kTile;
  if (tiles < 4) {
    predict_block(dataset, 0, dataset.size(), logits_out, scratch);
    return;
  }
  // Tile-aligned chunks across the pool with a persistent per-thread
  // scratch arena (warm after the first dispatch — no steady-state
  // allocation). Each chunk runs the fused extract→FC→logits pipeline
  // serially; results are chunking-invariant.
  parallel_for_chunked(0, tiles, [&](std::size_t tile_begin,
                                     std::size_t tile_end) {
    thread_local student_scratch local;
    const std::size_t begin = tile_begin * kTile;
    const std::size_t end = std::min(tile_end * kTile, dataset.size());
    predict_block(dataset, begin, end,
                  logits_out.subspan(begin, end - begin), local);
  });
}

std::vector<float> student_model::predict_batch(
    const data::trace_dataset& dataset) const {
  student_scratch scratch;
  std::vector<float> logits(dataset.size());
  predict_batch(dataset, logits, scratch);
  return logits;
}

void student_model::predict_block(const data::trace_dataset& dataset,
                                  std::size_t row_begin, std::size_t row_end,
                                  std::span<float> logits_out,
                                  student_scratch& scratch) const {
  KLINQ_REQUIRE(row_begin <= row_end && row_end <= dataset.size(),
                "student_model::predict_block: row range out of bounds");
  const std::size_t count = row_end - row_begin;
  KLINQ_REQUIRE(logits_out.size() == count,
                "student_model::predict_block: one logit per row required");
  if (count == 0) return;
  const std::size_t width = pipeline_.output_width();
  if (!fused_float_path_enabled()) {
    if (scratch.features.rows() != count || scratch.features.cols() != width) {
      scratch.features.resize(count, width);
    }
    dsp::batch_extractor(pipeline_)
        .extract_block(dataset, row_begin, row_end, scratch.features);
    net_.predict_logits(scratch.features, logits_out, scratch.net);
    return;
  }
  // Fused pipeline: each 64-shot tile is extracted feature-major straight
  // into the first-layer panel and pushed through the plane kernels — the
  // feature matrix never exists, and the tile stays cache-resident from
  // extraction through the logit head.
  constexpr std::size_t kTile = nn::kernels::max_tile_lanes;
  const dsp::batch_extractor extractor(pipeline_);
  scratch.net.panel.resize(width * kTile);
  for (std::size_t offset = 0; offset < count; offset += kTile) {
    const std::size_t lanes = std::min(kTile, count - offset);
    extractor.extract_tile(dataset, row_begin + offset, lanes,
                           scratch.net.panel.data(), kTile);
    net_.predict_logits_plane(scratch.net.panel.data(), lanes, kTile,
                              logits_out.data() + offset, scratch.net);
  }
}

void student_model::predict_lanes(const data::trace_dataset* const* datasets,
                                  const std::size_t* rows, std::size_t lanes,
                                  std::span<float> logits_out,
                                  student_scratch& scratch) const {
  constexpr std::size_t kTile = nn::kernels::max_tile_lanes;
  KLINQ_REQUIRE(lanes > 0 && lanes <= kTile,
                "student_model::predict_lanes: lane count exceeds the tile");
  KLINQ_REQUIRE(logits_out.size() == lanes,
                "student_model::predict_lanes: one logit per lane required");
  const std::size_t width = pipeline_.output_width();
  scratch.net.panel.resize(width * kTile);
  float* plane = scratch.net.panel.data();
  // Per-lane extraction + scatter (extract_tile assumes consecutive rows of
  // one dataset; lanes here come from many). The per-trace numerics are the
  // extractor's exact per-row pipeline, so each lane's features match the
  // unpacked path bit for bit.
  thread_local std::vector<float> row;
  row.assign(width, 0.0f);
  for (std::size_t s = 0; s < lanes; ++s) {
    const data::trace_dataset& ds = *datasets[s];
    pipeline_.extract(ds.trace(rows[s]), ds.samples_per_quadrature(), row);
    for (std::size_t i = 0; i < width; ++i) plane[i * kTile + s] = row[i];
  }
  // The plane kernels run whole lane groups; keep the pad lanes finite.
  const std::size_t padded = nn::kernels::padded_lanes(lanes);
  for (std::size_t s = lanes; s < padded; ++s) {
    for (std::size_t i = 0; i < width; ++i) plane[i * kTile + s] = 0.0f;
  }
  net_.predict_logits_plane(plane, lanes, kTile, logits_out.data(),
                            scratch.net);
}

double student_model::accuracy(const data::trace_dataset& dataset) const {
  if (dataset.empty()) return 0.0;
  const std::vector<float> logits = predict_batch(dataset);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.size(); ++r) {
    correct += ((logits[r] >= 0.0f) == dataset.label_state(r)) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.size());
}

void student_model::save(std::ostream& out) const {
  pipeline_.save(out);
  nn::save_network(net_, out);
}

student_model student_model::load(std::istream& in) {
  dsp::feature_pipeline pipeline = dsp::feature_pipeline::load(in);
  nn::network net = nn::load_network(in);
  return student_model(std::move(pipeline), std::move(net));
}

student_model distill_student(const data::trace_dataset& train,
                              std::span<const float> teacher_logits,
                              const student_config& config) {
  KLINQ_REQUIRE(train.size() > 1, "distill_student: empty training set");
  KLINQ_REQUIRE(teacher_logits.empty() || teacher_logits.size() == train.size(),
                "distill_student: teacher logit count != train size");
  stopwatch timer;

  auto pipeline = dsp::feature_pipeline::fit(
      train, {.groups_per_quadrature = config.groups_per_quadrature,
              .use_matched_filter = config.use_matched_filter,
              .normalization = config.normalization});
  const la::matrix_f features = pipeline.extract_all(train);

  nn::network net = nn::make_mlp(pipeline.output_width(), config.hidden);
  if (config.warm_start != nullptr) {
    KLINQ_REQUIRE(config.warm_start->input_dim() == net.input_dim() &&
                      config.warm_start->layer_count() == net.layer_count(),
                  "distill_student: warm-start network topology mismatch");
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      KLINQ_REQUIRE(
          config.warm_start->layer(l).out_dim() == net.layer(l).out_dim(),
          "distill_student: warm-start network topology mismatch");
    }
    net = *config.warm_start;
  } else {
    xoshiro256 rng(config.seed);
    net.initialize(nn::weight_init::he_normal, rng);
  }

  // Loss selection: composite distillation when soft labels are available,
  // plain BCE otherwise (ablation path; equivalent to alpha = 1).
  std::unique_ptr<nn::loss_fn> loss;
  if (teacher_logits.empty()) {
    loss = std::make_unique<nn::bce_with_logits_loss>(train.labels());
  } else {
    loss = std::make_unique<nn::distillation_loss>(
        train.labels(), teacher_logits, config.distillation);
  }

  const auto result = nn::train_network(
      net, features, *loss,
      {.epochs = config.epochs,
       .batch_size = config.batch_size,
       .learning_rate = config.learning_rate,
       .weight_decay = config.weight_decay,
       .lr_decay = config.lr_decay,
       .seed = config.seed});
  log_info("student ", net.topology_string(), " distilled: ",
           result.epochs_run, " epochs, final loss ", result.final_loss(),
           ", ", timer.seconds(), " s");
  return student_model(std::move(pipeline), std::move(net));
}

double compression_rate(std::size_t teacher_params,
                        std::size_t student_params) {
  KLINQ_REQUIRE(teacher_params > 0, "compression_rate: empty teacher");
  return 1.0 - static_cast<double>(student_params) /
                   static_cast<double>(teacher_params);
}

}  // namespace klinq::kd
