#include "klinq/kd/teacher.hpp"

#include <istream>
#include <ostream>

#include "klinq/common/error.hpp"
#include "klinq/common/log.hpp"
#include "klinq/common/stopwatch.hpp"
#include "klinq/nn/serialize.hpp"
#include "klinq/nn/trainer.hpp"

namespace klinq::kd {

teacher_model::teacher_model(nn::network net,
                             dsp::feature_normalizer input_norm)
    : net_(std::move(net)), input_norm_(std::move(input_norm)) {
  KLINQ_REQUIRE(net_.input_dim() == input_norm_.feature_width(),
                "teacher_model: normalizer width != network input");
}

la::matrix_f teacher_model::standardized(
    const data::trace_dataset& dataset) const {
  KLINQ_REQUIRE(dataset.feature_width() == net_.input_dim(),
                "teacher_model: dataset width != network input");
  la::matrix_f features = dataset.features();
  input_norm_.apply_all(features);
  return features;
}

float teacher_model::logit(std::span<const float> trace) const {
  KLINQ_REQUIRE(trace.size() == net_.input_dim(),
                "teacher_model::logit: bad trace width");
  std::vector<float> standardized_trace(trace.begin(), trace.end());
  input_norm_.apply(standardized_trace);
  return net_.predict_logit(standardized_trace);
}

bool teacher_model::predict_state(std::span<const float> trace) const {
  return logit(trace) >= 0.0f;
}

std::vector<float> teacher_model::logits_for(
    const data::trace_dataset& dataset) const {
  const la::matrix_f features = standardized(dataset);
  return nn::compute_logits(net_, features);
}

double teacher_model::accuracy(const data::trace_dataset& dataset) const {
  const la::matrix_f features = standardized(dataset);
  return nn::classification_accuracy(net_, features, dataset.labels());
}

void teacher_model::save(std::ostream& out) const {
  nn::save_network(net_, out);
  input_norm_.save(out);
}

teacher_model teacher_model::load(std::istream& in) {
  nn::network net = nn::load_network(in);
  dsp::feature_normalizer norm = dsp::feature_normalizer::load(in);
  return teacher_model(std::move(net), std::move(norm));
}

teacher_model train_teacher(const data::trace_dataset& train,
                            const teacher_config& config) {
  KLINQ_REQUIRE(train.size() > 1, "train_teacher: empty training set");
  stopwatch timer;

  // True z-score standardization (software-side model): the 1000-input
  // teacher needs zero-mean inputs to optimize well.
  auto input_norm =
      dsp::feature_normalizer::fit(train.features(), dsp::norm_mode::zscore);
  la::matrix_f features = train.features();
  input_norm.apply_all(features);

  nn::network net = nn::make_mlp(train.feature_width(), config.hidden);
  xoshiro256 rng(config.seed);
  net.initialize(nn::weight_init::he_normal, rng);

  const nn::bce_with_logits_loss loss(train.labels());
  const auto result = nn::train_network(
      net, features, loss,
      {.epochs = config.epochs,
       .batch_size = config.batch_size,
       .learning_rate = config.learning_rate,
       .weight_decay = config.weight_decay,
       .augment_noise_sigma = config.augment_noise_sigma,
       .lr_decay = config.lr_decay,
       .seed = config.seed});
  log_info("teacher ", net.topology_string(), " trained: ",
           result.epochs_run, " epochs, final loss ", result.final_loss(),
           ", ", timer.seconds(), " s");
  return teacher_model(std::move(net), std::move(input_norm));
}

}  // namespace klinq::kd
