#include "klinq/linalg/solve.hpp"

#include <cmath>

#include "klinq/common/error.hpp"

namespace klinq::la {

std::vector<double> solve_linear_system(matrix_d a, std::vector<double> b) {
  KLINQ_REQUIRE(a.rows() == a.cols(), "solve: matrix must be square");
  KLINQ_REQUIRE(b.size() == a.rows(), "solve: rhs size mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw numeric_error("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a(r, c) * x[c];
    x[r] = acc / a(r, r);
  }
  return x;
}

}  // namespace klinq::la
