#include "klinq/linalg/gemm.hpp"

#include <algorithm>
#include <cstddef>

#include "klinq/common/thread_pool.hpp"

namespace klinq::la {

namespace {

/// Rows of C below which threading overhead outweighs the work.
constexpr std::size_t kParallelRowThreshold = 8;

/// Flops below which we always stay single-threaded.
constexpr std::size_t kParallelFlopThreshold = 1u << 16;

template <class Body>
void for_each_row_block(std::size_t rows, std::size_t flops, Body&& body) {
  if (rows < kParallelRowThreshold || flops < kParallelFlopThreshold) {
    body(0, rows);
    return;
  }
  parallel_for_chunked(0, rows, body);
}

/// Shared dot-product reduction: four independent accumulator lanes over the
/// unrolled body, lanes combined pairwise, scalar tail. Every float inner
/// product in this module — gemv rows, gemm_nt edge outputs, and each output
/// of the register-blocked microkernel — reduces in exactly this order, so
/// the batched (GEMM) and single-shot (GEMV) inference paths are
/// bit-identical.
inline float dot_lanes(const float* a, const float* b, std::size_t k) {
  float acc0 = 0.0f;
  float acc1 = 0.0f;
  float acc2 = 0.0f;
  float acc3 = 0.0f;
  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    acc0 += a[p] * b[p];
    acc1 += a[p + 1] * b[p + 1];
    acc2 += a[p + 2] * b[p + 2];
    acc3 += a[p + 3] * b[p + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; p < k; ++p) acc += a[p] * b[p];
  return acc;
}

/// B rows per cache panel of gemm_nt. A panel (8 × k floats ≤ 32 KiB for the
/// teacher's k = 1000) stays L1-resident while every row of A streams across
/// it, so each B row loads from cache m times instead of from memory.
///
/// This module is the dependency-free scalar reference (and the backward-
/// pass workhorse). The float inference hot path no longer runs through it:
/// klinq/nn/kernels.hpp provides the runtime-dispatched AVX2-FMA/scalar
/// forward kernels (gemm_nt / gemm_nt_bias_act over packed feature-major
/// tiles), and the nn layer calls those directly.
constexpr std::size_t kNtPanelRows = 8;

}  // namespace

void gemm_nt(const matrix_f& a, const matrix_f& b, matrix_f& c,
             std::span<const float> bias, bool accumulate) {
  KLINQ_REQUIRE(a.cols() == b.cols(), "gemm_nt: inner dimensions differ");
  KLINQ_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
                "gemm_nt: output shape mismatch");
  KLINQ_REQUIRE(bias.empty() || bias.size() == b.rows(),
                "gemm_nt: bias length must equal output columns");
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k = a.cols();

  const auto store = [&bias, accumulate](float* c_row, std::size_t j,
                                         float acc) {
    if (!bias.empty()) acc += bias[j];
    if (accumulate) {
      c_row[j] += acc;
    } else {
      c_row[j] = acc;
    }
  };

  for_each_row_block(m, m * n * k, [&](std::size_t row_begin,
                                       std::size_t row_end) {
    for (std::size_t panel_begin = 0; panel_begin < n;
         panel_begin += kNtPanelRows) {
      const std::size_t panel_end = std::min(panel_begin + kNtPanelRows, n);
      for (std::size_t i = row_begin; i < row_end; ++i) {
        const float* a_row = a.data() + i * k;
        float* c_row = c.data() + i * n;
        for (std::size_t j = panel_begin; j < panel_end; ++j) {
          store(c_row, j, dot_lanes(a_row, b.data() + j * k, k));
        }
      }
    }
  });
}

void gemm_nn(const matrix_f& a, const matrix_f& b, matrix_f& c,
             bool accumulate) {
  KLINQ_REQUIRE(a.cols() == b.rows(), "gemm_nn: inner dimensions differ");
  KLINQ_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                "gemm_nn: output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();

  for_each_row_block(m, m * n * k, [&](std::size_t row_begin,
                                       std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a.data() + i * k;
      float* c_row = c.data() + i * n;
      if (!accumulate) std::fill(c_row, c_row + n, 0.0f);
      // i-k-j loop order: unit-stride access to both B and C rows.
      for (std::size_t p = 0; p < k; ++p) {
        const float a_val = a_row[p];
        if (a_val == 0.0f) continue;
        const float* b_row = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  });
}

void gemm_tn(const matrix_f& a, const matrix_f& b, matrix_f& c,
             bool accumulate) {
  KLINQ_REQUIRE(a.rows() == b.rows(), "gemm_tn: inner dimensions differ");
  KLINQ_REQUIRE(c.rows() == a.cols() && c.cols() == b.cols(),
                "gemm_tn: output shape mismatch");
  const std::size_t k = a.rows();  // summed dimension (batch)
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();

  // Parallelize over rows of C (= columns of A) so no two workers write the
  // same output row; each walks the full batch.
  for_each_row_block(m, m * n * k, [&](std::size_t row_begin,
                                       std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      float* c_row = c.data() + i * n;
      if (!accumulate) std::fill(c_row, c_row + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float a_val = a(p, i);
        if (a_val == 0.0f) continue;
        const float* b_row = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  });
}

void gemv(const matrix_f& m, std::span<const float> x, std::span<float> y,
          std::span<const float> bias) {
  KLINQ_REQUIRE(x.size() == m.cols(), "gemv: x length must equal cols");
  KLINQ_REQUIRE(y.size() == m.rows(), "gemv: y length must equal rows");
  KLINQ_REQUIRE(bias.empty() || bias.size() == m.rows(),
                "gemv: bias length must equal rows");
  // Same reduction order (and bias-last placement) as gemm_nt, so a
  // single-row gemv matches the corresponding gemm_nt output bit for bit.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.data() + i * m.cols();
    float acc = dot_lanes(row, x.data(), m.cols());
    if (!bias.empty()) acc += bias[i];
    y[i] = acc;
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  KLINQ_REQUIRE(a.size() == b.size(), "dot: length mismatch");
  return dot_lanes(a.data(), b.data(), a.size());
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  KLINQ_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void column_sums(const matrix_f& m, std::span<float> out, bool accumulate) {
  KLINQ_REQUIRE(out.size() == m.cols(), "column_sums: output length mismatch");
  if (!accumulate) std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += row[j];
  }
}

}  // namespace klinq::la
