// Dense row-major matrix and vector views.
//
// This is deliberately a small, concrete container — not an expression
// template library. The NN trainer needs: owning storage, row spans, and the
// GEMM/GEMV kernels in gemm.hpp. Element type is float throughout training;
// the fixed-point engine has its own containers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "klinq/common/error.hpp"

namespace klinq::la {

template <class T>
class matrix {
 public:
  matrix() = default;

  matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<T> data) {
    KLINQ_REQUIRE(data.size() == rows * cols,
                  "matrix::from_rows: data size mismatch");
    matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    KLINQ_REQUIRE(r < rows_ && c < cols_, "matrix::at: index out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    KLINQ_REQUIRE(r < rows_ && c < cols_, "matrix::at: index out of range");
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) noexcept {
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const noexcept {
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  std::span<T> flat() noexcept { return std::span<T>(data_); }
  std::span<const T> flat() const noexcept {
    return std::span<const T>(data_);
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T value) noexcept { data_.assign(data_.size(), value); }

  void resize(std::size_t rows, std::size_t cols, T fill_value = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill_value);
  }

  friend bool operator==(const matrix& a, const matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using matrix_f = matrix<float>;
using matrix_d = matrix<double>;

}  // namespace klinq::la
