// Threaded single-precision matrix kernels for NN training.
//
// Three layouts cover every pass of backprop without materializing
// transposes:
//   gemm_nt : C = A · Bᵀ   (forward:   Y[b,o]  = X[b,i]  · W[o,i])
//   gemm_nn : C = A · B    (backward:  dX[b,i] = dY[b,o] · W[o,i] as A·B)
//   gemm_tn : C = Aᵀ · B   (gradient:  dW[o,i] = dY[b,o]ᵀ · X[b,i])
// plus fused bias/accumulate options where the trainer needs them.
// All kernels parallelize over row blocks of C via the global thread pool.
#pragma once

#include <span>

#include "klinq/linalg/matrix.hpp"

namespace klinq::la {

/// C = A(m×k) · B(n×k)ᵀ → (m×n). If bias is non-empty it must have n entries
/// and is added to every row. `accumulate` adds into C instead of overwriting.
void gemm_nt(const matrix_f& a, const matrix_f& b, matrix_f& c,
             std::span<const float> bias = {}, bool accumulate = false);

/// C = A(m×k) · B(k×n) → (m×n).
void gemm_nn(const matrix_f& a, const matrix_f& b, matrix_f& c,
             bool accumulate = false);

/// C = A(k×m)ᵀ · B(k×n) → (m×n).
void gemm_tn(const matrix_f& a, const matrix_f& b, matrix_f& c,
             bool accumulate = false);

/// y = M(m×n) · x(n) (+ bias). y must have m entries.
void gemv(const matrix_f& m, std::span<const float> x, std::span<float> y,
          std::span<const float> bias = {});

/// Dot product of equal-length spans.
float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Column-wise sum of a (rows×cols) matrix into out(cols); used for bias
/// gradients. `accumulate` adds into out.
void column_sums(const matrix_f& m, std::span<float> out,
                 bool accumulate = false);

}  // namespace klinq::la
