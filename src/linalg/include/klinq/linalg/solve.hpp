// Dense linear solve (Gaussian elimination with partial pivoting).
//
// Used by the LDA baseline to invert the pooled covariance; sizes are small
// (tens of features), so a straightforward O(n³) elimination suffices.
#pragma once

#include <vector>

#include "klinq/linalg/matrix.hpp"

namespace klinq::la {

/// Solves A·x = b for square A (modifies copies; inputs untouched).
/// Throws numeric_error when A is singular to working precision.
std::vector<double> solve_linear_system(matrix_d a, std::vector<double> b);

}  // namespace klinq::la
