// klinq::fault — deterministic fault injection for the serving stack.
//
// Production hardening is only testable if failures can be produced on
// demand: a throwing shard, a torn snapshot on disk, a hung retrain, a slow
// engine. This module compiles *named fault points* into those hot paths;
// each point is a single call that is near-free while nothing is armed (one
// relaxed atomic load and a predicted branch) and becomes an injected
// failure when armed:
//
//   fault::trigger("serve.shard.run");          // may throw / sleep / drop
//   fault::corrupt("registry.save.snapshot",
//                  bytes.data(), bytes.size()); // may flip bytes in place
//
// Arming is programmatic (arm/disarm below — what the fault-matrix tests
// use) or environmental:
//
//   KLINQ_FAULT=<site>:<mode>:<prob>:<seed>[,<site>:<mode>:<prob>:<seed>...]
//
// where <mode> is one of
//   throw            throw fault::injected_fault at the site
//   delay_ms[=N]     sleep N milliseconds (default 10) — a slow engine/disk
//   corrupt_bytes    flip bytes of the buffer passed to fault::corrupt()
//   drop             trigger() returns action::drop; the site discards the
//                    unit of work it guards (a shard, a write, a message)
// <prob> is the per-invocation firing probability in [0, 1] (default 1) and
// <seed> seeds the site's deterministic RNG (default fixed), so a chaos run
// is reproducible given the same call order. A <site> ending in '*' arms
// every site with that prefix (e.g. "registry.*:throw:0.1:7").
//
// Sites compiled into the tree (grep for the literal to find each):
//   serve.submit.lease      engine acquisition at submit (throw => submit
//                           throws before a ticket exists)
//   serve.shard.run         shard execution (throw/drop => shard failure,
//                           delay => slow engine; deadline fodder)
//   registry.acquire        model_registry::acquire
//   registry.save.snapshot  serialized snapshot bytes (corrupt_bytes) or the
//                           write itself (throw)
//   registry.save.manifest  serialized manifest bytes / manifest write
//   registry.save.rename    between temp-file fsync and atomic rename — a
//                           kill-before-rename crash
//   registry.load.snapshot  snapshot bytes as read back (corrupt_bytes
//                           => quarantine path), or the read (throw)
//   recal.retrain           entry of a recalibration cycle (throw => retry
//                           path, delay => watchdog path)
//   recal.publish           between training and publish (throw)
//   net.accept              a freshly accepted connection (throw => the fd
//                           is closed before registration — a flaky accept)
//   net.read                bytes read off a client socket (drop => the read
//                           is discarded, desyncing the framing => the
//                           malformed-frame path; throw => read error)
//   net.write               a connection's write flush (throw => write
//                           error, the connection is evicted; drop => the
//                           flush round is skipped — a stalled sender)
//   net.decode              request-payload decode (throw => typed error
//                           frame, connection closed)
//   net.complete            completion-thread handoff (delay => responses
//                           stall while inflight accumulates — admission
//                           and shedding fodder)
//
// Thread-safety: every entry point is safe to call concurrently. Firing
// decisions use a per-site atomic counter hashed with the seed, so they are
// deterministic per site given the order of invocations (fully deterministic
// in single-threaded tests; reproducible-in-distribution under concurrency).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "klinq/common/error.hpp"

namespace klinq::fault {

/// Thrown by an armed `throw` fault point (derives from klinq::error so the
/// library's normal failure handling — failed shards, retry loops — sees it
/// as a regular operational error).
class injected_fault : public error {
 public:
  explicit injected_fault(const std::string& what) : error(what) {}
};

enum class fault_mode : std::uint8_t {
  none,
  throw_error,
  delay,
  corrupt_bytes,
  drop,
};

struct fault_spec {
  fault_mode mode = fault_mode::none;
  /// Per-invocation firing probability in [0, 1].
  double probability = 1.0;
  /// Seeds the site's deterministic firing/corruption RNG.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Sleep length for fault_mode::delay.
  std::uint32_t delay_milliseconds = 10;
};

/// What the call site must do after trigger() returns.
enum class action : std::uint8_t {
  none,  // proceed normally (disarmed, or the fault did not fire)
  drop,  // discard the unit of work this site guards
};

namespace detail {
/// Number of armed sites; -1 = KLINQ_FAULT not parsed yet. The disarmed
/// steady state is exactly one relaxed load of this counter per fault point.
extern std::atomic<int> armed_sites;
action trigger_slow(const char* site);
void corrupt_slow(const char* site, void* data, std::size_t size);
}  // namespace detail

/// Fault point for control paths: applies the armed mode (throws
/// injected_fault / sleeps / requests a drop). Near-zero cost disarmed.
inline action trigger(const char* site) {
  if (detail::armed_sites.load(std::memory_order_relaxed) == 0) {
    return action::none;
  }
  return detail::trigger_slow(site);
}

/// Fault point for data paths: when the site is armed with corrupt_bytes
/// (and fires), flips deterministic bytes of [data, data+size) in place.
inline void corrupt(const char* site, void* data, std::size_t size) {
  if (detail::armed_sites.load(std::memory_order_relaxed) == 0) return;
  detail::corrupt_slow(site, data, size);
}

/// Arms `site` (exact name, or prefix ending in '*') with `spec`; replaces
/// any previous spec for the same pattern. A spec with mode none disarms.
void arm(const std::string& site, fault_spec spec);

/// Parses one "<site>:<mode>[=arg][:<prob>[:<seed>]]" clause; throws
/// invalid_argument_error on malformed input. Exposed for tools.
fault_spec parse_spec(const std::string& clause, std::string& site);

/// Arms every comma-separated clause of `text` (the KLINQ_FAULT format).
void arm_from_string(const std::string& text);

void disarm(const std::string& site);
/// Disarms everything, including sites armed from KLINQ_FAULT.
void disarm_all();

/// True when any site is armed (after lazy KLINQ_FAULT parsing).
bool any_armed();
/// True when `site` would consult an armed spec (exact or prefix match).
bool armed(const std::string& site);

/// Times an armed spec at `site` actually fired (threw/slept/corrupted/
/// dropped) since arming. Unarmed or never-fired sites report 0.
std::uint64_t fired(const std::string& site);

struct site_report {
  std::string site;  // pattern as armed (may end in '*')
  fault_spec spec;
  std::uint64_t evaluations = 0;  // times a matching point was reached
  std::uint64_t fired = 0;        // times the Bernoulli draw fired
};

/// Every armed pattern with its counters (recovery telemetry for chaos
/// demos); ordering is unspecified.
std::vector<site_report> report();

}  // namespace klinq::fault
