#include "klinq/fault/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "klinq/common/log.hpp"

namespace klinq::fault {

namespace detail {

std::atomic<int> armed_sites{-1};  // -1: KLINQ_FAULT not parsed yet

namespace {

// splitmix64 — the per-site firing stream is hash(seed, invocation index),
// so the decision sequence depends only on the seed and the order in which
// the site is reached (lock-free: the index is an atomic counter).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

struct site_state {
  std::string pattern;  // exact site name, or prefix when wildcard
  bool wildcard = false;
  fault_spec spec;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> invocations{0};  // firing-stream index
  std::atomic<std::uint64_t> fired{0};

  /// Bernoulli draw from the deterministic per-site stream.
  bool draw() {
    const std::uint64_t n =
        invocations.fetch_add(1, std::memory_order_relaxed);
    return uniform01(mix64(spec.seed ^ n)) < spec.probability;
  }
};

struct fault_registry {
  std::mutex mutex;
  /// unique_ptr keeps counter addresses stable while new sites are armed.
  std::vector<std::unique_ptr<site_state>> sites;

  // NOTE: the constructor must not call the public arm()/arm_from_string()
  // free functions — they route through registry(), whose static-local
  // initialization is exactly what is running here (re-entering it is a
  // guard-variable deadlock). Everything goes through the member methods.
  fault_registry() {
    const char* env = std::getenv("KLINQ_FAULT");
    if (env != nullptr && *env != '\0') {
      try {
        arm_text(env);
      } catch (const std::exception& e) {
        log_warn("ignoring malformed KLINQ_FAULT: ", e.what());
      }
    }
    const std::lock_guard lock(mutex);
    publish_count();
  }

  /// arm() on this instance: validates, replaces or appends the pattern.
  void arm_pattern(const std::string& site, fault_spec spec) {
    KLINQ_REQUIRE(!site.empty() && site != "*",
                  "fault::arm: site name must be non-empty");
    KLINQ_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                  "fault::arm: probability must be in [0, 1]");
    const std::lock_guard lock(mutex);
    const bool wildcard = site.back() == '*';
    const std::string pattern =
        wildcard ? site.substr(0, site.size() - 1) : site;
    for (auto& state : sites) {
      if (state->pattern == pattern && state->wildcard == wildcard) {
        state->spec = spec;
        state->evaluations.store(0, std::memory_order_relaxed);
        state->invocations.store(0, std::memory_order_relaxed);
        state->fired.store(0, std::memory_order_relaxed);
        publish_count();
        return;
      }
    }
    auto state = std::make_unique<site_state>();
    state->pattern = pattern;
    state->wildcard = wildcard;
    state->spec = spec;
    sites.push_back(std::move(state));
    publish_count();
  }

  /// arm_from_string() on this instance.
  void arm_text(const std::string& text) {
    std::size_t begin = 0;
    while (begin <= text.size()) {
      std::size_t comma = text.find(',', begin);
      if (comma == std::string::npos) comma = text.size();
      const std::string clause = text.substr(begin, comma - begin);
      if (!clause.empty()) {
        std::string site;
        const fault_spec spec = parse_spec(clause, site);
        arm_pattern(site, spec);
      }
      begin = comma + 1;
    }
  }

  /// Requires mutex held (or construction).
  void publish_count() {
    int armed = 0;
    for (const auto& site : sites) {
      if (site->spec.mode != fault_mode::none) ++armed;
    }
    armed_sites.store(armed, std::memory_order_relaxed);
  }

  /// Requires mutex held. Exact match outranks prefix patterns; among
  /// prefixes the longest wins.
  site_state* find(std::string_view site) {
    site_state* best = nullptr;
    for (const auto& candidate : sites) {
      if (candidate->spec.mode == fault_mode::none) continue;
      if (!candidate->wildcard) {
        if (candidate->pattern == site) return candidate.get();
        continue;
      }
      if (site.substr(0, candidate->pattern.size()) == candidate->pattern &&
          (best == nullptr || best->pattern.size() <
                                  candidate->pattern.size())) {
        best = candidate.get();
      }
    }
    return best;
  }
};

// Leaked singleton: fault points may be reached during static destruction
// (server/registry members of globals tearing down).
fault_registry& registry() {
  static fault_registry* instance = new fault_registry();
  return *instance;
}

}  // namespace

action trigger_slow(const char* site) {
  fault_registry& reg = registry();
  fault_spec spec;
  site_state* state = nullptr;
  {
    const std::lock_guard lock(reg.mutex);
    state = reg.find(site);
    // corrupt_bytes is a data-plane mode: it fires at corrupt() points
    // only, and must not consume this site's firing stream here.
    if (state == nullptr || state->spec.mode == fault_mode::corrupt_bytes) {
      return action::none;
    }
    state->evaluations.fetch_add(1, std::memory_order_relaxed);
    if (!state->draw()) return action::none;
    state->fired.fetch_add(1, std::memory_order_relaxed);
    spec = state->spec;
  }
  switch (spec.mode) {
    case fault_mode::throw_error:
      throw injected_fault(std::string("injected fault at ") + site);
    case fault_mode::delay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.delay_milliseconds));
      return action::none;
    case fault_mode::drop:
      return action::drop;
    case fault_mode::corrupt_bytes:  // data-plane mode; no-op on trigger()
    case fault_mode::none:
      return action::none;
  }
  return action::none;
}

void corrupt_slow(const char* site, void* data, std::size_t size) {
  if (data == nullptr || size == 0) return;
  fault_registry& reg = registry();
  fault_spec spec;
  {
    const std::lock_guard lock(reg.mutex);
    site_state* state = reg.find(site);
    if (state == nullptr || state->spec.mode != fault_mode::corrupt_bytes) {
      return;
    }
    state->evaluations.fetch_add(1, std::memory_order_relaxed);
    if (!state->draw()) return;
    state->fired.fetch_add(1, std::memory_order_relaxed);
    spec = state->spec;
  }
  // Flip a deterministic sample of bytes (at least one, ~1/64 of the
  // buffer) — enough to tear any serialized structure without being a
  // trivially detectable truncation.
  auto* bytes = static_cast<unsigned char*>(data);
  const std::size_t flips = size / 64 + 1;
  for (std::size_t i = 0; i < flips; ++i) {
    const std::uint64_t h = mix64(spec.seed ^ (0xc0ffee00ull + i));
    bytes[h % size] ^= static_cast<unsigned char>(0xa5u ^ (h >> 32));
  }
}

}  // namespace detail

void arm(const std::string& site, fault_spec spec) {
  detail::registry().arm_pattern(site, spec);
}

fault_spec parse_spec(const std::string& clause, std::string& site) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= clause.size()) {
    const std::size_t colon = clause.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(clause.substr(begin));
      break;
    }
    parts.push_back(clause.substr(begin, colon - begin));
    begin = colon + 1;
  }
  KLINQ_REQUIRE(parts.size() >= 2 && parts.size() <= 4 && !parts[0].empty(),
                "fault spec must be <site>:<mode>[:<prob>[:<seed>]]");
  site = parts[0];

  fault_spec spec;
  std::string mode = parts[1];
  const std::size_t eq = mode.find('=');
  std::string arg;
  if (eq != std::string::npos) {
    arg = mode.substr(eq + 1);
    mode = mode.substr(0, eq);
  }
  if (mode == "throw") {
    spec.mode = fault_mode::throw_error;
  } else if (mode == "delay_ms") {
    spec.mode = fault_mode::delay;
    if (!arg.empty()) {
      spec.delay_milliseconds =
          static_cast<std::uint32_t>(std::stoul(arg));
    }
  } else if (mode == "corrupt_bytes") {
    spec.mode = fault_mode::corrupt_bytes;
  } else if (mode == "drop") {
    spec.mode = fault_mode::drop;
  } else {
    throw invalid_argument_error(
        "fault spec: unknown mode '" + mode +
        "' (expected throw | delay_ms[=N] | corrupt_bytes | drop)");
  }
  try {
    if (parts.size() >= 3 && !parts[2].empty()) {
      spec.probability = std::stod(parts[2]);
    }
    if (parts.size() >= 4 && !parts[3].empty()) {
      spec.seed = std::stoull(parts[3]);
    }
  } catch (const std::exception&) {
    throw invalid_argument_error("fault spec: unparsable prob/seed in '" +
                                 clause + "'");
  }
  KLINQ_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                "fault spec: probability must be in [0, 1]");
  return spec;
}

void arm_from_string(const std::string& text) {
  detail::registry().arm_text(text);
}

void disarm(const std::string& site) {
  fault_spec off;
  off.mode = fault_mode::none;
  arm(site, off);
}

void disarm_all() {
  detail::fault_registry& reg = detail::registry();
  const std::lock_guard lock(reg.mutex);
  reg.sites.clear();
  reg.publish_count();
}

bool any_armed() {
  detail::registry();  // force KLINQ_FAULT parsing
  return detail::armed_sites.load(std::memory_order_relaxed) > 0;
}

bool armed(const std::string& site) {
  detail::fault_registry& reg = detail::registry();
  const std::lock_guard lock(reg.mutex);
  return reg.find(site) != nullptr;
}

std::uint64_t fired(const std::string& site) {
  detail::fault_registry& reg = detail::registry();
  const std::lock_guard lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& state : reg.sites) {
    const std::string name =
        state->wildcard ? state->pattern + "*" : state->pattern;
    if (name == site) total += state->fired.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<site_report> report() {
  detail::fault_registry& reg = detail::registry();
  const std::lock_guard lock(reg.mutex);
  std::vector<site_report> out;
  out.reserve(reg.sites.size());
  for (const auto& state : reg.sites) {
    if (state->spec.mode == fault_mode::none) continue;
    site_report row;
    row.site = state->wildcard ? state->pattern + "*" : state->pattern;
    row.spec = state->spec;
    row.evaluations = state->evaluations.load(std::memory_order_relaxed);
    row.fired = state->fired.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace klinq::fault
