// Deterministic dataset generation over all state permutations.
//
// Mirrors the paper's data protocol: for an N-qubit device, every one of the
// 2^N basis-state permutations is measured `shots_per_permutation` times;
// per-qubit datasets label each shot with that qubit's *prepared* bit.
//
// Shots are seeded by hash(seed, permutation, shot, split), so
//   * train and test sets never share a shot,
//   * the same physical shots are replayed when extracting different qubits'
//     channels (exactly like reusing one recorded dataset), and
//   * generation is reproducible and parallelizable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "klinq/data/trace_dataset.hpp"
#include "klinq/qsim/readout_simulator.hpp"

namespace klinq::qsim {

struct dataset_spec {
  device_params device;
  /// Shots per permutation in the train split (paper: 15 000).
  std::size_t shots_per_permutation_train = 200;
  /// Shots per permutation in the test split (paper: 35 000).
  std::size_t shots_per_permutation_test = 500;
  std::uint64_t seed = 42;
};

struct qubit_dataset {
  data::trace_dataset train;
  data::trace_dataset test;
};

/// Builds train/test datasets for one qubit's channel. Thread-parallel.
qubit_dataset build_qubit_dataset(const dataset_spec& spec, std::size_t qubit);

/// Builds the frequency-multiplexed feedline dataset (synchronous mode).
/// Labels carry the full permutation in `permutations()`; the per-trace
/// binary label is the given qubit's bit (so the same container type works).
qubit_dataset build_multiplexed_dataset(const dataset_spec& spec,
                                        std::size_t label_qubit);

/// Builds a dataset whose rows concatenate several qubits' channel traces
/// [ch₀ I|Q  ch₁ I|Q  …] for the same physical shots, labelled with
/// `label_qubit`'s prepared bit. Substrate for the paper's §VI future-work
/// direction: a crosstalk-aware teacher that sees neighbouring channels
/// (the student still reads only its own channel). The row order matches
/// build_qubit_dataset for the same spec, so teacher logits align 1:1 with
/// single-channel training rows.
qubit_dataset build_multichannel_dataset(const dataset_spec& spec,
                                         std::size_t label_qubit,
                                         const std::vector<std::size_t>& channels);

/// Stable 64-bit shot seed (exposed for tests of determinism).
std::uint64_t shot_seed(std::uint64_t seed, std::uint32_t permutation,
                        std::uint64_t shot, bool is_test);

}  // namespace klinq::qsim
