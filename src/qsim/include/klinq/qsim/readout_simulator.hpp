// Dispersive-readout shot simulator.
//
// One "shot" prepares every qubit in a chosen basis state (one of the 2^N
// permutations), integrates the resonator responses over the trace duration,
// applies crosstalk mixing and noise, and returns the digitized per-qubit
// baseband channels — the same arrays an RFSoC ADC + analog down-conversion
// chain would hand the discriminator.
#pragma once

#include <cstdint>
#include <vector>

#include "klinq/common/rng.hpp"
#include "klinq/qsim/device_params.hpp"

namespace klinq::qsim {

/// Result of simulating one shot: per-qubit flattened [I|Q] channel traces.
struct shot_result {
  /// channels[q] has 2N floats: N I-samples then N Q-samples.
  std::vector<std::vector<float>> channels;
  /// Actual initial states after preparation errors (ground truth labels
  /// remain the *prepared* permutation, not these).
  std::uint32_t actual_initial_states = 0;
  /// Decay time (ns) per qubit, or a negative value when no decay occurred.
  std::vector<double> decay_time_ns;
};

class readout_simulator {
 public:
  explicit readout_simulator(device_params params);

  const device_params& params() const noexcept { return params_; }

  std::size_t samples_per_quadrature() const noexcept { return samples_; }

  /// Simulates one shot with every qubit prepared per `permutation`
  /// (bit q = prepared state of qubit q). Deterministic given `rng` state.
  shot_result simulate_shot(std::uint32_t permutation, xoshiro256& rng) const;

  /// Clean (noise-free, jitter-free, crosstalk-free) expected trajectory of
  /// one qubit for a given initial state and optional decay time — exposes
  /// the physics for tests and envelope analysis.
  void clean_trajectory(std::size_t qubit, bool excited, double decay_time_ns,
                        std::vector<float>& i_out,
                        std::vector<float>& q_out) const;

  /// Sums all qubit channels modulated at their IF frequencies into a single
  /// frequency-multiplexed feedline trace (2N floats) — the input the
  /// synchronous five-qubit baseline digitizes.
  std::vector<float> multiplex_feedline(const shot_result& shot) const;

 private:
  device_params params_;
  std::size_t samples_ = 0;
};

}  // namespace klinq::qsim
