// Physical model parameters for the synthetic readout device.
//
// The paper evaluates on real traces from a five-qubit superconducting
// processor (Lienhard et al.). We replace that dataset with a dispersive-
// readout simulator whose per-qubit parameters reproduce the statistical
// structure the discriminators see:
//
//   * state-dependent steady-state IQ response (separation sets the SNR),
//   * resonator ring-up (first-order response, time constant tau_ring_ns) —
//     early samples carry little state information,
//   * additive white Gaussian noise per sample and quadrature,
//   * mid-readout T1 relaxation: an excited qubit may decay during the
//     measurement, after which the resonator relaxes toward the ground-state
//     response — the dominant duration-dependent error,
//   * state-preparation error: the label is the *intended* state; with small
//     probability the qubit starts in the other state (fidelity floor),
//   * per-shot gain and phase jitter (slow electronics drift),
//   * inter-qubit crosstalk: each qubit's channel picks up a scaled copy of
//     its neighbours' signals (frequency-multiplexed readout leakage) —
//     the effect the paper blames for qubit 2's poor fidelity.
#pragma once

#include <cstddef>
#include <vector>

#include "klinq/linalg/matrix.hpp"

namespace klinq::qsim {

/// IQ-plane point (arbitrary ADC units).
struct iq_point {
  double i = 0.0;
  double q = 0.0;
};

struct qubit_params {
  /// Steady-state resonator response when the qubit is in |0⟩ / |1⟩.
  iq_point ground{};
  iq_point excited{};
  /// Resonator response time constant (ns).
  double tau_ring_ns = 100.0;
  /// White-noise standard deviation per sample per quadrature.
  double noise_sigma = 1.0;
  /// Energy-relaxation time T1 (ns).
  double t1_ns = 40000.0;
  /// Probability that the prepared state differs from the label.
  double prep_error = 0.002;
  /// Relative per-shot gain jitter (multiplicative, Gaussian sigma).
  double gain_jitter = 0.01;
  /// Per-shot phase jitter in radians (Gaussian sigma).
  double phase_jitter = 0.005;
  /// Readout intermediate frequency (MHz) — used only by the multiplexed
  /// feedline mode; per-qubit baseband channels are already down-converted.
  double if_freq_mhz = 0.0;
};

struct device_params {
  std::vector<qubit_params> qubits;
  /// crosstalk(q, p): fraction of qubit p's clean signal leaking into qubit
  /// q's channel (diagonal ignored). Empty matrix = no crosstalk.
  la::matrix_d crosstalk;
  /// Full generated trace length (ns); benches slice shorter durations.
  double trace_duration_ns = 1000.0;

  std::size_t qubit_count() const noexcept { return qubits.size(); }

  /// Throws invalid_argument_error if shapes/values are inconsistent.
  void validate() const;
};

/// Calibrated five-qubit preset mirroring the paper's device: qubit 2 is
/// noisy and crosstalk-afflicted, qubit 5 is T1-limited (its fidelity peaks
/// at shorter traces), qubits 1/4/5 are high-SNR (FNN-A group).
device_params lienhard5q_preset();

/// Single-qubit toy preset for tests: high SNR, fast convergence.
device_params single_qubit_test_preset();

}  // namespace klinq::qsim
