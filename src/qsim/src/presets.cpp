// Calibrated device presets.
//
// The lienhard5q preset is tuned so the full KLiNQ pipeline (averaging + MF
// + distilled student, Q16.16 inference) lands near the paper's Table I
// per-qubit fidelities at 1 µs and reproduces the Table II duration trends:
//
//   * Q1: high SNR, slow-ish ring-up — degrades gently below 750 ns.
//   * Q2: small IQ separation and heavy crosstalk from both neighbours —
//     the paper's problem qubit (≈ 0.75 fidelity).
//   * Q3: moderate SNR, moderate crosstalk (FNN-B group with Q2).
//   * Q4: moderate-high SNR, somewhat short T1.
//   * Q5: very high SNR but the shortest T1 — its fidelity *peaks at shorter
//     traces*, reproducing the paper's highlighted 550–750 ns optimum.
//
// Separation magnitudes follow the matched-filter error model
// err ≈ Q(|Δ|·sqrt(N_eff)/(2σ)) with N_eff ≈ 450 effective samples at 1 µs
// (ring-up excluded), then fine-tuned empirically against the student
// pipeline (see tests/test_calibration.cpp).
#include <cmath>

#include "klinq/qsim/device_params.hpp"

namespace klinq::qsim {

namespace {

/// Builds a qubit whose |0⟩/|1⟩ responses are separated by `separation`
/// at angle `angle_rad` around a common operating point.
qubit_params make_qubit(double separation, double angle_rad, double tau_ring,
                        double t1_ns, double prep_error, double if_freq_mhz) {
  qubit_params qp;
  const double di = 0.5 * separation * std::cos(angle_rad);
  const double dq = 0.5 * separation * std::sin(angle_rad);
  // Operating point away from the origin: normalization offsets matter.
  qp.ground = iq_point{2.0 - di, 1.2 - dq};
  qp.excited = iq_point{2.0 + di, 1.2 + dq};
  qp.tau_ring_ns = tau_ring;
  qp.noise_sigma = 1.0;
  qp.t1_ns = t1_ns;
  qp.prep_error = prep_error;
  // Jitter acts on the full trajectory including the DC operating point, so
  // even sub-percent levels contribute visibly to the class overlap.
  qp.gain_jitter = 0.006;
  qp.phase_jitter = 0.004;
  qp.if_freq_mhz = if_freq_mhz;
  return qp;
}

}  // namespace

device_params lienhard5q_preset() {
  device_params device;
  device.trace_duration_ns = 1000.0;
  device.qubits = {
      //         separation  angle   tau    T1(ns)  prep    IF(MHz)
      make_qubit(0.205, 0.35, 80.0, 20000.0, 0.002, 10.0),   // Q1
      make_qubit(0.090, 1.10, 120.0, 20000.0, 0.005, 25.0),  // Q2
      make_qubit(0.156, 2.00, 100.0, 15000.0, 0.003, 40.0),  // Q3
      make_qubit(0.164, 2.70, 90.0, 12000.0, 0.004, 55.0),   // Q4
      make_qubit(0.300, 5.10, 60.0, 5500.0, 0.010, 70.0),    // Q5
  };

  la::matrix_d crosstalk(5, 5, 0.0);
  // Q2 (index 1) is the crosstalk victim, as in the paper.
  crosstalk(1, 0) = 0.22;
  crosstalk(1, 2) = 0.18;
  // Moderate nearest-neighbour leakage elsewhere.
  crosstalk(0, 1) = 0.04;
  crosstalk(2, 1) = 0.08;
  crosstalk(2, 3) = 0.06;
  crosstalk(3, 2) = 0.05;
  crosstalk(3, 4) = 0.04;
  crosstalk(4, 3) = 0.03;
  device.crosstalk = std::move(crosstalk);
  return device;
}

device_params single_qubit_test_preset() {
  device_params device;
  device.trace_duration_ns = 1000.0;
  device.qubits = {make_qubit(0.5, 0.8, 50.0, 100000.0, 0.0, 10.0)};
  return device;
}

}  // namespace klinq::qsim
