#include "klinq/qsim/readout_simulator.hpp"

#include <cmath>

#include "klinq/common/error.hpp"
#include "klinq/data/trace_dataset.hpp"

namespace klinq::qsim {

void device_params::validate() const {
  KLINQ_REQUIRE(!qubits.empty(), "device_params: no qubits");
  KLINQ_REQUIRE(trace_duration_ns > 0, "device_params: bad duration");
  for (const auto& q : qubits) {
    KLINQ_REQUIRE(q.tau_ring_ns > 0, "device_params: tau_ring must be > 0");
    KLINQ_REQUIRE(q.noise_sigma >= 0, "device_params: negative noise");
    KLINQ_REQUIRE(q.t1_ns > 0, "device_params: T1 must be > 0");
    KLINQ_REQUIRE(q.prep_error >= 0 && q.prep_error < 0.5,
                  "device_params: prep_error must be in [0, 0.5)");
  }
  if (!crosstalk.empty()) {
    KLINQ_REQUIRE(crosstalk.rows() == qubits.size() &&
                      crosstalk.cols() == qubits.size(),
                  "device_params: crosstalk matrix shape mismatch");
  }
}

readout_simulator::readout_simulator(device_params params)
    : params_(std::move(params)) {
  params_.validate();
  samples_ = data::samples_for_duration_ns(params_.trace_duration_ns);
  KLINQ_REQUIRE(samples_ > 0, "readout_simulator: zero-sample trace");
}

namespace {

/// First-order resonator update over one sample period.
/// alpha = 1 − exp(−dt/tau) is precomputed by the caller.
inline void relax_toward(iq_point& state, const iq_point& target,
                         double alpha) noexcept {
  state.i += (target.i - state.i) * alpha;
  state.q += (target.q - state.q) * alpha;
}

}  // namespace

void readout_simulator::clean_trajectory(std::size_t qubit, bool excited,
                                         double decay_time_ns,
                                         std::vector<float>& i_out,
                                         std::vector<float>& q_out) const {
  KLINQ_REQUIRE(qubit < params_.qubit_count(),
                "clean_trajectory: qubit index out of range");
  const qubit_params& qp = params_.qubits[qubit];
  const double dt = data::kSamplePeriodNs;
  const double alpha = 1.0 - std::exp(-dt / qp.tau_ring_ns);

  i_out.assign(samples_, 0.0f);
  q_out.assign(samples_, 0.0f);
  iq_point state{};  // resonator starts empty
  bool is_excited = excited;
  for (std::size_t s = 0; s < samples_; ++s) {
    const double t = static_cast<double>(s) * dt;
    if (is_excited && decay_time_ns >= 0.0 && t >= decay_time_ns) {
      is_excited = false;
    }
    const iq_point& target = is_excited ? qp.excited : qp.ground;
    relax_toward(state, target, alpha);
    i_out[s] = static_cast<float>(state.i);
    q_out[s] = static_cast<float>(state.q);
  }
}

shot_result readout_simulator::simulate_shot(std::uint32_t permutation,
                                             xoshiro256& rng) const {
  const std::size_t n_qubits = params_.qubit_count();
  const std::size_t n = samples_;

  shot_result shot;
  shot.channels.assign(n_qubits, std::vector<float>(2 * n, 0.0f));
  shot.decay_time_ns.assign(n_qubits, -1.0);

  // Pass 1: clean per-qubit signals (before crosstalk/noise), including
  // preparation errors, T1 decay and per-shot gain/phase jitter.
  std::vector<std::vector<float>> clean_i(n_qubits);
  std::vector<std::vector<float>> clean_q(n_qubits);
  for (std::size_t q = 0; q < n_qubits; ++q) {
    const qubit_params& qp = params_.qubits[q];
    const bool prepared = ((permutation >> q) & 1u) != 0;
    const bool actual = rng.bernoulli(qp.prep_error) ? !prepared : prepared;
    if (actual) shot.actual_initial_states |= (1u << q);

    double decay_ns = -1.0;
    if (actual) {
      const double td = rng.exponential(qp.t1_ns);
      if (td < params_.trace_duration_ns) {
        decay_ns = td;
        shot.decay_time_ns[q] = td;
      }
    }
    clean_trajectory(q, actual, decay_ns, clean_i[q], clean_q[q]);

    // Per-shot gain/phase jitter rotates and scales the whole trajectory.
    const double gain = 1.0 + rng.normal(0.0, qp.gain_jitter);
    const double phase = rng.normal(0.0, qp.phase_jitter);
    const double c = std::cos(phase) * gain;
    const double s = std::sin(phase) * gain;
    for (std::size_t k = 0; k < n; ++k) {
      const double i_val = clean_i[q][k];
      const double q_val = clean_q[q][k];
      clean_i[q][k] = static_cast<float>(c * i_val - s * q_val);
      clean_q[q][k] = static_cast<float>(s * i_val + c * q_val);
    }
  }

  // Pass 2: crosstalk mixing + additive white noise per channel.
  const bool has_crosstalk = !params_.crosstalk.empty();
  for (std::size_t q = 0; q < n_qubits; ++q) {
    const qubit_params& qp = params_.qubits[q];
    auto& channel = shot.channels[q];
    for (std::size_t k = 0; k < n; ++k) {
      double i_val = clean_i[q][k];
      double q_val = clean_q[q][k];
      if (has_crosstalk) {
        for (std::size_t p = 0; p < n_qubits; ++p) {
          if (p == q) continue;
          const double coupling = params_.crosstalk(q, p);
          if (coupling == 0.0) continue;
          i_val += coupling * clean_i[p][k];
          q_val += coupling * clean_q[p][k];
        }
      }
      channel[k] = static_cast<float>(i_val + rng.normal(0.0, qp.noise_sigma));
      channel[n + k] =
          static_cast<float>(q_val + rng.normal(0.0, qp.noise_sigma));
    }
  }
  return shot;
}

std::vector<float> readout_simulator::multiplex_feedline(
    const shot_result& shot) const {
  KLINQ_REQUIRE(shot.channels.size() == params_.qubit_count(),
                "multiplex_feedline: shot does not match device");
  const std::size_t n = samples_;
  const double dt_us = data::kSamplePeriodNs * 1e-3;
  std::vector<float> feedline(2 * n, 0.0f);
  for (std::size_t q = 0; q < params_.qubit_count(); ++q) {
    const double omega =
        2.0 * 3.14159265358979323846 * params_.qubits[q].if_freq_mhz * dt_us;
    const auto& channel = shot.channels[q];
    for (std::size_t k = 0; k < n; ++k) {
      const double angle = omega * static_cast<double>(k);
      const double c = std::cos(angle);
      const double s = std::sin(angle);
      // Complex up-conversion: (I + jQ) · e^{jωk}.
      feedline[k] += static_cast<float>(c * channel[k] - s * channel[n + k]);
      feedline[n + k] +=
          static_cast<float>(s * channel[k] + c * channel[n + k]);
    }
  }
  return feedline;
}

}  // namespace klinq::qsim
