#include "klinq/qsim/dataset_builder.hpp"

#include "klinq/common/error.hpp"
#include "klinq/common/thread_pool.hpp"

namespace klinq::qsim {

std::uint64_t shot_seed(std::uint64_t seed, std::uint32_t permutation,
                        std::uint64_t shot, bool is_test) {
  // splitmix64-style avalanche over the combined identifiers.
  std::uint64_t x = seed;
  x ^= 0x9E3779B97F4A7C15ull + (static_cast<std::uint64_t>(permutation) << 32) +
       shot * 2 + (is_test ? 1 : 0);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {

enum class channel_mode { per_qubit, multiplexed };

data::trace_dataset build_split(const readout_simulator& sim,
                                const dataset_spec& spec, std::size_t qubit,
                                std::size_t shots_per_perm, bool is_test,
                                channel_mode mode) {
  const std::size_t n_qubits = sim.params().qubit_count();
  KLINQ_REQUIRE(qubit < n_qubits, "dataset builder: qubit out of range");
  KLINQ_REQUIRE(n_qubits <= 8, "dataset builder: permutation space too large");
  const std::uint32_t n_perms = 1u << n_qubits;
  const std::size_t total = static_cast<std::size_t>(n_perms) * shots_per_perm;

  data::trace_dataset ds(total, sim.samples_per_quadrature());
  ds.resize_traces(total);

  parallel_for_chunked(0, total, [&](std::size_t begin, std::size_t end) {
    for (std::size_t index = begin; index < end; ++index) {
      const auto perm = static_cast<std::uint32_t>(index / shots_per_perm);
      const std::uint64_t shot_index = index % shots_per_perm;
      xoshiro256 rng(shot_seed(spec.seed, perm, shot_index, is_test));
      const shot_result shot = sim.simulate_shot(perm, rng);
      const bool label = ((perm >> qubit) & 1u) != 0;
      if (mode == channel_mode::per_qubit) {
        ds.set_trace(index, shot.channels[qubit], label,
                     static_cast<std::uint8_t>(perm));
      } else {
        const std::vector<float> feedline = sim.multiplex_feedline(shot);
        ds.set_trace(index, feedline, label, static_cast<std::uint8_t>(perm));
      }
    }
  });
  return ds;
}

}  // namespace

qubit_dataset build_qubit_dataset(const dataset_spec& spec,
                                  std::size_t qubit) {
  const readout_simulator sim(spec.device);
  qubit_dataset out;
  out.train = build_split(sim, spec, qubit, spec.shots_per_permutation_train,
                          /*is_test=*/false, channel_mode::per_qubit);
  out.test = build_split(sim, spec, qubit, spec.shots_per_permutation_test,
                         /*is_test=*/true, channel_mode::per_qubit);
  return out;
}

namespace {

data::trace_dataset build_multichannel_split(
    const readout_simulator& sim, const dataset_spec& spec,
    std::size_t label_qubit, const std::vector<std::size_t>& channels,
    std::size_t shots_per_perm, bool is_test) {
  const std::size_t n_qubits = sim.params().qubit_count();
  KLINQ_REQUIRE(label_qubit < n_qubits,
                "multichannel builder: label qubit out of range");
  KLINQ_REQUIRE(!channels.empty(), "multichannel builder: no channels");
  for (const std::size_t c : channels) {
    KLINQ_REQUIRE(c < n_qubits, "multichannel builder: channel out of range");
  }
  const std::uint32_t n_perms = 1u << n_qubits;
  const std::size_t total = static_cast<std::size_t>(n_perms) * shots_per_perm;
  const std::size_t n = sim.samples_per_quadrature();

  // The container models the concatenation as one long [I|Q]-style row of
  // channels.size() × N complex samples.
  data::trace_dataset ds(total, channels.size() * n);
  ds.resize_traces(total);

  parallel_for_chunked(0, total, [&](std::size_t begin, std::size_t end) {
    std::vector<float> row(channels.size() * 2 * n);
    for (std::size_t index = begin; index < end; ++index) {
      const auto perm = static_cast<std::uint32_t>(index / shots_per_perm);
      const std::uint64_t shot_index = index % shots_per_perm;
      xoshiro256 rng(shot_seed(spec.seed, perm, shot_index, is_test));
      const shot_result shot = sim.simulate_shot(perm, rng);
      for (std::size_t c = 0; c < channels.size(); ++c) {
        const auto& channel = shot.channels[channels[c]];
        std::copy(channel.begin(), channel.end(),
                  row.begin() + static_cast<std::ptrdiff_t>(c * 2 * n));
      }
      const bool label = ((perm >> label_qubit) & 1u) != 0;
      ds.set_trace(index, row, label, static_cast<std::uint8_t>(perm));
    }
  });
  return ds;
}

}  // namespace

qubit_dataset build_multichannel_dataset(
    const dataset_spec& spec, std::size_t label_qubit,
    const std::vector<std::size_t>& channels) {
  const readout_simulator sim(spec.device);
  qubit_dataset out;
  out.train = build_multichannel_split(sim, spec, label_qubit, channels,
                                       spec.shots_per_permutation_train,
                                       /*is_test=*/false);
  out.test = build_multichannel_split(sim, spec, label_qubit, channels,
                                      spec.shots_per_permutation_test,
                                      /*is_test=*/true);
  return out;
}

qubit_dataset build_multiplexed_dataset(const dataset_spec& spec,
                                        std::size_t label_qubit) {
  const readout_simulator sim(spec.device);
  qubit_dataset out;
  out.train =
      build_split(sim, spec, label_qubit, spec.shots_per_permutation_train,
                  /*is_test=*/false, channel_mode::multiplexed);
  out.test =
      build_split(sim, spec, label_qubit, spec.shots_per_permutation_test,
                  /*is_test=*/true, channel_mode::multiplexed);
  return out;
}

}  // namespace klinq::qsim
