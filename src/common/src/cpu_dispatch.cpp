#include "klinq/common/cpu_dispatch.hpp"

#include "klinq/common/env.hpp"

namespace klinq {

bool cpu_supports_avx2() noexcept {
#if KLINQ_HAVE_X86_SIMD
#if defined(__AVX2__)
  // The whole build already assumes AVX2 (-march=...); no cpuid needed.
  return true;
#else
  return __builtin_cpu_supports("avx2") != 0;
#endif
#else
  return false;
#endif
}

namespace {

simd_tier resolve_tier() {
  const std::string preference = env_string("KLINQ_SIMD", "auto");
  if (preference == "scalar" || preference == "scalar64") {
    return simd_tier::scalar64;
  }
  // "avx2" and "auto" both defer to the runtime check: requesting a tier the
  // host cannot execute falls back instead of faulting on the first kernel.
  return cpu_supports_avx2() ? simd_tier::avx2 : simd_tier::scalar64;
}

}  // namespace

simd_tier active_simd_tier() noexcept {
  static const simd_tier tier = resolve_tier();
  return tier;
}

bool deterministic_float_mode() noexcept {
  static const bool mode = [] {
    const std::string v = env_string("KLINQ_DETERMINISTIC", "0");
    return v == "1" || v == "true" || v == "on";
  }();
  return mode;
}

simd_tier active_float_simd_tier() noexcept {
  static const simd_tier tier =
      deterministic_float_mode() ? simd_tier::scalar64 : active_simd_tier();
  return tier;
}

bool fused_float_path_enabled() noexcept {
  static const bool fused = [] {
    const std::string v = env_string("KLINQ_FUSED", "1");
    return !(v == "0" || v == "false" || v == "off");
  }();
  return fused;
}

const char* simd_tier_name(simd_tier tier) noexcept {
  switch (tier) {
    case simd_tier::avx2:
      return "avx2";
    case simd_tier::scalar64:
      break;
  }
  return "scalar64";
}

}  // namespace klinq
