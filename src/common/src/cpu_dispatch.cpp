#include "klinq/common/cpu_dispatch.hpp"

#include "klinq/common/env.hpp"

namespace klinq {

bool cpu_supports_avx2() noexcept {
#if KLINQ_HAVE_X86_SIMD
#if defined(__AVX2__)
  // The whole build already assumes AVX2 (-march=...); no cpuid needed.
  return true;
#else
  return __builtin_cpu_supports("avx2") != 0;
#endif
#else
  return false;
#endif
}

bool cpu_supports_avx512() noexcept {
#if KLINQ_HAVE_X86_SIMD
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__)
  // The whole build already assumes the AVX-512 baseline; no cpuid needed.
  return true;
#else
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#endif
#else
  return false;
#endif
}

namespace {

simd_tier resolve_tier() {
  const std::string preference = env_string("KLINQ_SIMD", "auto");
  if (preference == "scalar" || preference == "scalar64") {
    return simd_tier::scalar64;
  }
  if (preference == "avx2") {
    // An explicit avx2 pin caps dispatch there: it never silently upgrades
    // to AVX-512, so A/B runs measure exactly the tier they asked for.
    return cpu_supports_avx2() ? simd_tier::avx2 : simd_tier::scalar64;
  }
  // "avx512" and "auto" both defer to the runtime checks: pick the widest
  // tier the host executes and fall back avx512 → avx2 → scalar instead of
  // faulting on the first kernel.
  if (cpu_supports_avx512()) return simd_tier::avx512;
  return cpu_supports_avx2() ? simd_tier::avx2 : simd_tier::scalar64;
}

}  // namespace

simd_tier active_simd_tier() noexcept {
  static const simd_tier tier = resolve_tier();
  return tier;
}

bool deterministic_float_mode() noexcept {
  static const bool mode = [] {
    const std::string v = env_string("KLINQ_DETERMINISTIC", "0");
    return v == "1" || v == "true" || v == "on";
  }();
  return mode;
}

simd_tier active_float_simd_tier() noexcept {
  static const simd_tier tier =
      deterministic_float_mode() ? simd_tier::scalar64 : active_simd_tier();
  return tier;
}

bool fused_float_path_enabled() noexcept {
  static const bool fused = [] {
    const std::string v = env_string("KLINQ_FUSED", "1");
    return !(v == "0" || v == "false" || v == "off");
  }();
  return fused;
}

const char* simd_tier_name(simd_tier tier) noexcept {
  switch (tier) {
    case simd_tier::avx512:
      return "avx512";
    case simd_tier::avx2:
      return "avx2";
    case simd_tier::scalar64:
      break;
  }
  return "scalar64";
}

}  // namespace klinq
