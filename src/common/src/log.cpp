#include "klinq/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace klinq {

namespace {

log_level level_from_env() {
  const char* env = std::getenv("KLINQ_LOG");
  if (env == nullptr) return log_level::info;
  const std::string value(env);
  if (value == "debug") return log_level::debug;
  if (value == "info") return log_level::info;
  if (value == "warn") return log_level::warn;
  if (value == "error") return log_level::error;
  if (value == "off") return log_level::off;
  return log_level::info;
}

std::atomic<log_level>& level_storage() {
  static std::atomic<log_level> level{level_from_env()};
  return level;
}

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO ";
    case log_level::warn: return "WARN ";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

log_level get_log_level() noexcept {
  return level_storage().load(std::memory_order_relaxed);
}

void set_log_level(log_level level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(log_level level, const std::string& message) {
  if (level < get_log_level()) return;
  static std::mutex io_mutex;
  const std::lock_guard lock(io_mutex);
  std::fprintf(stderr, "[klinq %s] %s\n", level_name(level), message.c_str());
  std::fflush(stderr);
}

}  // namespace klinq
