#include "klinq/common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "klinq/common/error.hpp"

namespace klinq {

cli_parser::cli_parser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void cli_parser::add_flag(const std::string& name, const std::string& help) {
  KLINQ_REQUIRE(!entries_.count(name), "duplicate CLI entry: " + name);
  entries_[name] = entry{help, "", /*is_flag=*/true, /*flag_set=*/false};
  declaration_order_.push_back(name);
}

void cli_parser::add_option(const std::string& name, const std::string& help,
                            const std::string& default_value) {
  KLINQ_REQUIRE(!entries_.count(name), "duplicate CLI entry: " + name);
  entries_[name] = entry{help, default_value, /*is_flag=*/false, false};
  declaration_order_.push_back(name);
}

bool cli_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw invalid_argument_error("unexpected positional argument: " + arg +
                                   "\n" + usage());
    }
    arg = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = entries_.find(arg);
    if (it == entries_.end()) {
      throw invalid_argument_error("unknown option --" + arg + "\n" + usage());
    }
    entry& e = it->second;
    if (e.is_flag) {
      if (has_inline_value) {
        throw invalid_argument_error("flag --" + arg + " takes no value");
      }
      e.flag_set = true;
    } else {
      if (!has_inline_value) {
        if (i + 1 >= argc) {
          throw invalid_argument_error("option --" + arg + " expects a value");
        }
        value = argv[++i];
      }
      e.value = value;
    }
  }
  return true;
}

const cli_parser::entry& cli_parser::find(const std::string& name) const {
  const auto it = entries_.find(name);
  KLINQ_REQUIRE(it != entries_.end(), "undeclared CLI entry: " + name);
  return it->second;
}

bool cli_parser::get_flag(const std::string& name) const {
  const entry& e = find(name);
  KLINQ_REQUIRE(e.is_flag, "--" + name + " is not a flag");
  return e.flag_set;
}

const std::string& cli_parser::get_string(const std::string& name) const {
  const entry& e = find(name);
  KLINQ_REQUIRE(!e.is_flag, "--" + name + " is a flag, not an option");
  return e.value;
}

std::int64_t cli_parser::get_int(const std::string& name) const {
  const std::string& text = get_string(name);
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return parsed;
  } catch (const std::exception&) {
    throw invalid_argument_error("option --" + name +
                                 " expects an integer, got '" + text + "'");
  }
}

double cli_parser::get_double(const std::string& name) const {
  const std::string& text = get_string(name);
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return parsed;
  } catch (const std::exception&) {
    throw invalid_argument_error("option --" + name +
                                 " expects a number, got '" + text + "'");
  }
}

std::string cli_parser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : declaration_order_) {
    const entry& e = entries_.at(name);
    out << "  --" << name;
    if (!e.is_flag) out << " <value>";
    out << "\n      " << e.help;
    if (!e.is_flag) out << " (default: " << e.value << ")";
    out << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace klinq
