#include "klinq/common/env.hpp"

#include <cstdlib>

#include "klinq/common/log.hpp"

namespace klinq {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return value != nullptr ? std::string(value) : fallback;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    log_warn("ignoring unparsable ", name, "='", value, "'");
    return fallback;
  }
}

double env_double(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    log_warn("ignoring unparsable ", name, "='", value, "'");
    return fallback;
  }
}

}  // namespace klinq
