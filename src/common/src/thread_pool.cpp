#include "klinq/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace klinq {

namespace {

// Set for the lifetime of a worker thread (and during inline submit
// execution on a workerless pool). submit() consults it to decide between
// queueing and running inline; parallel_for dispatches chunks regardless
// because its work-stealing wait keeps nested dispatch deadlock-free.
thread_local bool t_on_pool_worker = false;

struct worker_scope {
  bool previous;
  worker_scope() noexcept : previous(t_on_pool_worker) {
    t_on_pool_worker = true;
  }
  ~worker_scope() { t_on_pool_worker = previous; }
};

}  // namespace

bool thread_pool::on_worker() noexcept { return t_on_pool_worker; }

thread_pool::thread_pool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t spawned = worker_count > 1 ? worker_count - 1 : 0;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void thread_pool::worker_loop() {
  const worker_scope scope;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void thread_pool::submit(std::function<void()> task) {
  if (workers_.empty() || t_on_pool_worker) {
    // Run inline before returning when there is nobody safe to hand the
    // task to: either the pool has no background workers (single-CPU host),
    // or the submitter *is* a pool worker. Unlike parallel_for — whose
    // work-stealing wait makes queueing from a worker safe — submit()'s
    // caller may block on the task's completion through a channel the pool
    // cannot see (e.g. readout_server::wait on a condition variable), so a
    // queued-from-worker task could deadlock a saturated pool. Mark the
    // thread as a worker for the duration so the task behaves exactly as it
    // would on a real worker.
    const worker_scope scope;
    task();
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void thread_pool::submit_urgent(std::function<void()> task) {
  if (workers_.empty() || t_on_pool_worker) {
    // Same inline rules as submit(): with nobody safe to hand the task to,
    // "ahead of the queue" degenerates to "right now".
    const worker_scope scope;
    task();
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    tasks_.push_front(std::move(task));
  }
  task_ready_.notify_one();
}

void thread_pool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t parallelism = workers_.size() + 1;
  const std::size_t chunk_count = std::min(total, parallelism);
  if (chunk_count <= 1) {
    chunk_body(begin, end);
    return;
  }

  // Heap-allocated and shared with every task: a stack-allocated state
  // would be destroyed the instant the waiting caller observes completion,
  // racing the last worker's unlock/notify on the same mutex/cv
  // (use-after-free that intermittently deadlocks the pool).
  struct shared_state {
    std::mutex done_mutex;
    std::condition_variable done;
    std::size_t remaining = 0;  // guarded by done_mutex
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<shared_state>();
  state->remaining = chunk_count - 1;

  const std::size_t base = total / chunk_count;
  const std::size_t extra = total % chunk_count;
  std::size_t cursor = begin;
  std::size_t first_begin = 0;
  std::size_t first_end = 0;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t chunk_begin = cursor;
    const std::size_t chunk_end = cursor + len;
    cursor = chunk_end;
    if (c == 0) {
      // Reserve the first chunk for the calling thread.
      first_begin = chunk_begin;
      first_end = chunk_end;
      continue;
    }
    const std::lock_guard lock(mutex_);
    tasks_.push_back([state, &chunk_body, chunk_begin, chunk_end] {
      std::exception_ptr error;
      try {
        chunk_body(chunk_begin, chunk_end);
      } catch (...) {
        error = std::current_exception();
      }
      const std::lock_guard done_lock(state->done_mutex);
      if (error && !state->first_error) state->first_error = error;
      --state->remaining;
      if (state->remaining == 0) state->done.notify_one();
    });
  }
  task_ready_.notify_all();

  try {
    // The caller's reserved chunk runs under the worker flag so its own
    // nested dispatch behaves exactly like a queued chunk's.
    const worker_scope scope;
    chunk_body(first_begin, first_end);
  } catch (...) {
    const std::lock_guard done_lock(state->done_mutex);
    if (!state->first_error) state->first_error = std::current_exception();
  }

  // Work-stealing wait: instead of sleeping while chunks are outstanding,
  // drain the shared task queue. This is what makes nested dispatch safe —
  // a worker blocked here executes queued tasks (its own sub-chunks, or
  // anyone else's), so a saturated pool can never end up with every thread
  // asleep waiting for work only another sleeper could pop. Sleeping on the
  // completion signal is reserved for the moment the queue is empty, which
  // means every outstanding chunk is already executing on some other thread
  // and will signal completion itself. A drained task may be an unrelated
  // long-running chunk (the usual help-first caveat: joining can execute
  // foreign work), which delays this caller but never deadlocks it.
  for (;;) {
    {
      const std::lock_guard done_lock(state->done_mutex);
      if (state->remaining == 0) break;
    }
    std::function<void()> task;
    {
      const std::lock_guard lock(mutex_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (task) {
      const worker_scope scope;
      try {
        task();
      } catch (...) {
        // parallel_for chunks trap their own exceptions; a throwing
        // submit() task terminates exactly as it would on a worker thread.
        std::terminate();
      }
      continue;
    }
    std::unique_lock done_lock(state->done_mutex);
    state->done.wait(done_lock, [&] { return state->remaining == 0; });
    break;
  }

  std::exception_ptr error;
  {
    const std::lock_guard done_lock(state->done_mutex);
    error = state->first_error;
  }
  if (error) std::rethrow_exception(error);
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end,
                       [&body](std::size_t chunk_begin, std::size_t chunk_end) {
                         for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                           body(i);
                         }
                       });
}

thread_pool& global_thread_pool() {
  static thread_pool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  global_thread_pool().parallel_for(begin, end, body);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  global_thread_pool().parallel_for_chunked(begin, end, chunk_body);
}

}  // namespace klinq
