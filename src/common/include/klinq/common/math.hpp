// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "klinq/common/error.hpp"

namespace klinq {

/// Ceiling of log2(n) for n >= 1 (adder-tree depth of an n-input reduction).
constexpr int ceil_log2(std::uint64_t n) noexcept {
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// True when n is a power of two (n > 0).
constexpr bool is_power_of_two(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Exponent e such that 2^e is the closest power of two to |x| (x != 0).
/// Used by the hardware normalizer: division by sigma becomes a right shift.
inline int nearest_power_of_two_exponent(double x) {
  KLINQ_REQUIRE(std::isfinite(x) && x > 0.0,
                "power-of-two approximation requires finite x > 0");
  return static_cast<int>(std::lround(std::log2(x)));
}

/// Numerically stable mean of a span (0 for empty input).
inline double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

/// Population variance (denominator N); 0 for fewer than 1 element.
inline double variance(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double mu = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size());
}

/// Geometric mean of positive values; throws on non-positive input.
inline double geometric_mean(std::span<const double> values) {
  KLINQ_REQUIRE(!values.empty(), "geometric mean of empty set");
  double log_sum = 0.0;
  for (const double v : values) {
    KLINQ_REQUIRE(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Logistic sigmoid with guarded exponent.
inline double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Standard normal CDF (used to predict fidelity from SNR in tests).
inline double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/// Welford online mean/variance accumulator.
class running_stats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }

  /// Population variance; 0 when fewer than two samples.
  double variance() const noexcept {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  double stddev() const noexcept { return std::sqrt(variance()); }

  double min_value() const noexcept { return min_; }
  double max_value() const noexcept { return max_; }

  void add_tracking_extrema(double x) noexcept {
    add(x);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace klinq
