// Typed environment-variable access with defaults (bench scaling knobs).
#pragma once

#include <cstdint>
#include <string>

namespace klinq {

/// Returns the value of `name`, or `fallback` when unset.
std::string env_string(const std::string& name, const std::string& fallback);

/// Returns the integer value of `name`, or `fallback` when unset/unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Returns the double value of `name`, or `fallback` when unset/unparsable.
double env_double(const std::string& name, double fallback);

}  // namespace klinq
