// Wall-clock stopwatch for coarse timing in benches and progress logs.
#pragma once

#include <chrono>

namespace klinq {

class stopwatch {
 public:
  stopwatch() noexcept : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace klinq
