// Minimal work-sharing thread pool with a blocking parallel_for and an
// asynchronous submit().
//
// The pool is used by the GEMM kernels, the dataset generator and the serve
// shard scheduler. A single process-wide pool (global_thread_pool) avoids
// oversubscription; individual components never spawn their own threads.
//
// Nesting: code already running on a pool worker (a submitted task or a
// parallel_for chunk) may call parallel_for again — the nested call queues
// its chunks like any other and then work-steals while blocked: instead of
// sleeping, a waiting caller drains the shared task queue (its own
// sub-chunks, or anyone else's). Two saturated workers can therefore never
// deadlock on each other's queued sub-chunks — a blocked thread always makes
// progress on whatever is queued, and only sleeps once every outstanding
// chunk of its own dispatch is already executing elsewhere. Results are
// chunking-invariant, so stealing changes scheduling, never values.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace klinq {

class thread_pool {
 public:
  /// Creates `worker_count` workers; 0 means std::thread::hardware_concurrency.
  explicit thread_pool(std::size_t worker_count = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues one task for asynchronous execution and returns immediately.
  /// Tasks share the FIFO queue with parallel_for chunks. The task runs
  /// inline on the calling thread before submit() returns when the pool has
  /// no spawned workers (single-CPU host) or when the caller is itself a
  /// pool worker (queueing there and blocking on completion could deadlock
  /// a saturated pool, like nested parallel_for) — callers must not rely on
  /// concurrency, only on eventual completion. Exceptions escaping the task
  /// terminate (there is nowhere to rethrow them); wrap fallible work and
  /// route errors through your own completion state.
  void submit(std::function<void()> task);

  /// Like submit() but enqueues at the *front* of the shared queue, ahead of
  /// every already-queued task — the latency-class hook used by the serve
  /// feedback lane. Urgent tasks only jump the queue; they never preempt a
  /// task already executing, and on a workerless pool (or when called from a
  /// worker) they run inline exactly like submit(), so urgency is a
  /// scheduling hint, not a guarantee of reduced latency. Two urgent submits
  /// run in LIFO order relative to each other; that is acceptable because the
  /// feedback lane carries single-shot requests with per-request deadlines,
  /// not ordered streams.
  void submit_urgent(std::function<void()> task);

  /// True when the current thread is one of this pool's workers (or is
  /// running an inline-executed submit on a workerless pool).
  static bool on_worker() noexcept;

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all work is done,
  /// draining the task queue while blocked (work-stealing wait) so nested
  /// dispatch from a pool worker parallelizes instead of degrading to the
  /// serial inline path. Exceptions from body are rethrown on the caller
  /// (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end) range,
  /// which amortizes the per-index std::function call on hot loops.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& chunk_body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

/// Process-wide pool sized to the hardware; created on first use.
thread_pool& global_thread_pool();

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body);

}  // namespace klinq
