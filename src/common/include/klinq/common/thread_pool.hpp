// Minimal work-sharing thread pool with a blocking parallel_for.
//
// The pool is used by the GEMM kernels and the dataset generator. A single
// process-wide pool (global_thread_pool) avoids oversubscription; individual
// components never spawn their own threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace klinq {

class thread_pool {
 public:
  /// Creates `worker_count` workers; 0 means std::thread::hardware_concurrency.
  explicit thread_pool(std::size_t worker_count = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all work is done.
  /// Exceptions from body are rethrown on the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end) range,
  /// which amortizes the per-index std::function call on hot loops.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& chunk_body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

/// Process-wide pool sized to the hardware; created on first use.
thread_pool& global_thread_pool();

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body);

}  // namespace klinq
