// Checked narrowing conversions (GSL narrow-style).
#pragma once

#include <type_traits>

#include "klinq/common/error.hpp"

namespace klinq {

/// Convert between arithmetic types, throwing numeric_error if the value does
/// not round-trip (i.e. the conversion would narrow away information).
template <class To, class From>
constexpr To checked_cast(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>,
                "checked_cast requires arithmetic types");
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      ((result < To{}) != (value < From{}))) {
    throw numeric_error("checked_cast: value does not fit in target type");
  }
  return result;
}

/// Unchecked narrowing for hot paths where the range is already validated.
template <class To, class From>
constexpr To narrow_cast(From value) noexcept {
  return static_cast<To>(value);
}

}  // namespace klinq
