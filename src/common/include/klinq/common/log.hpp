// Leveled stderr logging with a runtime-adjustable threshold.
//
// Default level is `info`; set KLINQ_LOG=debug|info|warn|error|off in the
// environment or call set_log_level(). Logging is intentionally simple: one
// line per message, flushed immediately, safe to call from pool workers.
#pragma once

#include <sstream>
#include <string>

namespace klinq {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

log_level get_log_level() noexcept;
void set_log_level(log_level level) noexcept;

/// Emit one log line if `level` passes the current threshold.
void log_message(log_level level, const std::string& message);

namespace detail {
template <class... Args>
std::string concat_log(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <class... Args>
void log_debug(Args&&... args) {
  if (get_log_level() <= log_level::debug)
    log_message(log_level::debug, detail::concat_log(std::forward<Args>(args)...));
}

template <class... Args>
void log_info(Args&&... args) {
  if (get_log_level() <= log_level::info)
    log_message(log_level::info, detail::concat_log(std::forward<Args>(args)...));
}

template <class... Args>
void log_warn(Args&&... args) {
  if (get_log_level() <= log_level::warn)
    log_message(log_level::warn, detail::concat_log(std::forward<Args>(args)...));
}

template <class... Args>
void log_error(Args&&... args) {
  if (get_log_level() <= log_level::error)
    log_message(log_level::error, detail::concat_log(std::forward<Args>(args)...));
}

}  // namespace klinq
