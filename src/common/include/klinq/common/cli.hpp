// Tiny declarative command-line parser used by benches and examples.
//
//   klinq::cli_parser cli("bench_table1", "Reproduces Table I");
//   cli.add_flag("paper-scale", "use 15k/35k traces per permutation");
//   cli.add_option("seed", "RNG seed", "42");
//   cli.parse(argc, argv);               // throws invalid_argument_error
//   auto seed = cli.get_int("seed");
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace klinq {

class cli_parser {
 public:
  cli_parser(std::string program, std::string description);

  /// Boolean switch, e.g. --paper-scale. Default false.
  void add_flag(const std::string& name, const std::string& help);

  /// Valued option, e.g. --seed 42 or --seed=42.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false (after printing usage) when --help was given;
  /// throws invalid_argument_error on unknown or malformed arguments.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  std::string usage() const;

 private:
  struct entry {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  const entry& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, entry> entries_;
  std::vector<std::string> declaration_order_;
};

}  // namespace klinq
