// Cache-line-aligned storage for kernel register planes.
//
// The vectorized fixed-point kernels stream contiguous int32 planes
// (weights, activation tiles); starting every plane on a cache-line boundary
// keeps SIMD loads within single lines and tiles from straddling lines
// shared with unrelated data. std::vector's default allocator only
// guarantees alignof(std::max_align_t), so planes use this allocator.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace klinq {

inline constexpr std::size_t kCacheLineBytes = 64;

template <class T, std::size_t Alignment = kCacheLineBytes>
struct aligned_allocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

  using value_type = T;

  aligned_allocator() noexcept = default;
  template <class U>
  aligned_allocator(const aligned_allocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = aligned_allocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const aligned_allocator&,
                         const aligned_allocator&) noexcept {
    return true;
  }
};

/// Cache-line-aligned vector for raw register planes.
template <class T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

}  // namespace klinq
