// Runtime CPU-feature dispatch for the vectorized kernel tiers.
//
// The fixed-point MAC kernels (klinq/fixed/fixed_kernels.hpp) and the float
// plane kernels (klinq/nn/kernels.hpp) ship three implementations: a
// branchless int64 scalar path that any host runs, and AVX2 / AVX-512 paths
// compiled per-function (GCC/Clang target attributes) on x86-64. Which one
// executes is decided once per process:
//
//   * compile time — KLINQ_HAVE_X86_SIMD gates whether the AVX2/AVX-512
//     bodies exist at all (x86-64 GCC/Clang builds, unless
//     -DKLINQ_DISABLE_SIMD removes them so non-SIMD hosts exercise the
//     scalar fallback in CI),
//   * run time — cpuid (__builtin_cpu_supports) confirms the executing host
//     actually has the requested extensions; builds with -march=native that
//     already imply them (__AVX2__, __AVX512F__...) skip the cpuid,
//   * override — KLINQ_SIMD=scalar pins the scalar tier for A/B measurement;
//     KLINQ_SIMD=avx2 caps dispatch at the AVX2 tier (never upgrades to
//     AVX-512); KLINQ_SIMD=avx512|auto picks the widest tier available and
//     falls back avx512 → avx2 → scalar (requesting a tier the host lacks
//     never faults).
//
// Benches record the resolved tier in their emitted JSON so a committed
// snapshot says which datapath produced it.
#pragma once

#if !defined(KLINQ_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define KLINQ_HAVE_X86_SIMD 1
#else
#define KLINQ_HAVE_X86_SIMD 0
#endif

namespace klinq {

/// Kernel implementation tiers, narrowest capability first.
enum class simd_tier {
  scalar64,  ///< branchless int64 scalar kernels (always available)
  avx2,      ///< 4-lane int64 / 8-lane float AVX2 kernels
  avx512,    ///< 8-lane int64 / 16-lane float AVX-512 (F+BW+DQ) kernels
};

/// True when the executing CPU reports AVX2 (false on non-x86 builds and
/// when KLINQ_DISABLE_SIMD compiled the SIMD paths out).
bool cpu_supports_avx2() noexcept;

/// True when the executing CPU reports the AVX-512 subsets the wide kernels
/// use (F, BW and DQ — the Skylake-SP baseline). False on non-x86 builds and
/// when KLINQ_DISABLE_SIMD compiled the SIMD paths out.
bool cpu_supports_avx512() noexcept;

/// The tier the dispatched kernels run at, resolved once per process from
/// the compile gate, cpuid and the KLINQ_SIMD override.
simd_tier active_simd_tier() noexcept;

/// Stable lowercase name ("scalar64", "avx2", "avx512") for logs and BENCH
/// json.
const char* simd_tier_name(simd_tier tier) noexcept;

/// True when KLINQ_DETERMINISTIC=1|true|on requests host-independent float
/// results. The fixed-point kernels are bit-identical across tiers, so this
/// only affects the float kernels (klinq/nn/kernels.hpp): FMA contraction
/// and 8/16-lane reassociation make the AVX2/AVX-512 float tiers differ
/// from scalar in the last ULPs, and pinning the scalar tier removes that
/// variation.
bool deterministic_float_mode() noexcept;

/// The tier the dispatched FLOAT kernels run at: active_simd_tier() unless
/// deterministic mode pins scalar64. Resolved once per process.
simd_tier active_float_simd_tier() noexcept;

/// True unless KLINQ_FUSED=0|false|off requests the legacy two-phase float
/// inference path (materialize the feature matrix, then batched FC) instead
/// of the fused per-tile extract→FC→logits pipeline. Both paths are bitwise
/// identical (the float plane kernels are lane-invariant); the switch
/// exists for A/B benchmarking and is stamped into BENCH json context.
/// Lives beside the other process-wide datapath mode flags so reading it
/// never drags module dependencies into the benches. Resolved once per
/// process.
bool fused_float_path_enabled() noexcept;

}  // namespace klinq
