// Deterministic, fast pseudo-random number generation.
//
// The library uses xoshiro256++ for reproducible dataset generation and
// weight initialization. Every stochastic component takes an explicit seed so
// experiments are replayable; there is no global RNG state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "klinq/common/int128.hpp"

namespace klinq {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator, so it composes with <random> too.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a 64-bit seed via splitmix64 expansion.
  explicit xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64: guarantees a non-degenerate (non-zero) state expansion.
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Multiply-shift bounded generation (Lemire); negligible bias for our use.
    const uint128 product = static_cast<uint128>((*this)()) * n;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Standard normal via Box–Muller with cached second deviate.
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    cached_ = radius * std::sin(two_pi * u2);
    has_cached_ = true;
    return radius * std::cos(two_pi * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed deviate with the given mean (mean > 0).
  double exponential(double mean) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Derive an independent child generator (for per-worker streams).
  xoshiro256 split() noexcept { return xoshiro256((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace klinq
