// Error handling primitives for the KLiNQ library.
//
// All library errors are reported via exceptions derived from klinq::error.
// Precondition violations use KLINQ_REQUIRE which throws invalid_argument_error
// with file/line context; internal invariants use KLINQ_ASSERT which throws
// logic_error_bug (these indicate a library bug, not a user mistake).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace klinq {

/// Base class of every exception thrown by the KLiNQ library.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

/// An internal invariant failed; indicates a bug inside the library.
class logic_error_bug : public error {
 public:
  explicit logic_error_bug(const std::string& what) : error(what) {}
};

/// File or serialization format problem.
class io_error : public error {
 public:
  explicit io_error(const std::string& what) : error(what) {}
};

/// Numeric issue (overflow outside saturating paths, non-finite loss, ...).
class numeric_error : public error {
 public:
  explicit numeric_error(const std::string& what) : error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(std::string_view cond,
                                               std::string_view msg,
                                               std::string_view file,
                                               int line) {
  throw invalid_argument_error(std::string("precondition failed: ") +
                               std::string(cond) + " — " + std::string(msg) +
                               " (" + std::string(file) + ":" +
                               std::to_string(line) + ")");
}

[[noreturn]] inline void throw_assert_failure(std::string_view cond,
                                              std::string_view file,
                                              int line) {
  throw logic_error_bug(std::string("internal invariant failed: ") +
                        std::string(cond) + " (" + std::string(file) + ":" +
                        std::to_string(line) + ")");
}
}  // namespace detail

}  // namespace klinq

/// Validate a documented precondition of a public API.
#define KLINQ_REQUIRE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::klinq::detail::throw_require_failure(#cond, (msg), __FILE__,     \
                                             __LINE__);                  \
    }                                                                    \
  } while (false)

/// Check an internal invariant; failure means a library bug.
#define KLINQ_ASSERT(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::klinq::detail::throw_assert_failure(#cond, __FILE__, __LINE__);  \
    }                                                                    \
  } while (false)
