// 128-bit integer aliases.
//
// GCC/Clang's __int128 is used for full-precision fixed-point intermediates
// (a 32×32-bit multiply needs 64 bits; wide accumulators need more). The
// __extension__ marker keeps -Wpedantic builds clean.
#pragma once

namespace klinq {

__extension__ typedef __int128 int128;
__extension__ typedef unsigned __int128 uint128;

}  // namespace klinq
