// Quickstart: train a KLiNQ discriminator for one qubit, end to end.
//
//   1. simulate a readout dataset for a single superconducting qubit,
//   2. train the large teacher FNN on raw I/Q traces,
//   3. distill it into the compact FNN-A student (31-16-8-1),
//   4. quantize to the Q16.16 hardware model and compare all three.
//
// Runs in well under a minute on a laptop.
#include <cstdio>

#include "klinq/core/presets.hpp"
#include "klinq/hw/fixed_discriminator.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/kd/teacher.hpp"
#include "klinq/qsim/dataset_builder.hpp"

int main() {
  using namespace klinq;

  // 1. Synthetic device: one well-behaved qubit, 1 µs traces @ 500 MS/s.
  qsim::dataset_spec spec;
  spec.device = qsim::single_qubit_test_preset();
  spec.shots_per_permutation_train = 500;
  spec.shots_per_permutation_test = 500;
  spec.seed = 2026;
  std::printf("generating dataset (%zu train / %zu test traces)...\n",
              2 * spec.shots_per_permutation_train,
              2 * spec.shots_per_permutation_test);
  const qsim::qubit_dataset data = qsim::build_qubit_dataset(spec, 0);

  // 2. Teacher: the paper's 1000-1000-500-250-1 FNN is overkill for one
  //    easy qubit — a narrower stack shows the same flow much faster.
  kd::teacher_config teacher_config;
  teacher_config.hidden = {128, 64};
  teacher_config.epochs = 6;
  std::printf("training teacher (%s-style FNN)...\n", "Lienhard");
  const kd::teacher_model teacher = kd::train_teacher(data.train, teacher_config);

  // 3. Student: FNN-A front-end (15 averaging groups + matched filter).
  std::printf("distilling FNN-A student from teacher soft labels...\n");
  const std::vector<float> soft_labels = teacher.logits_for(data.train);
  const kd::student_config student_config =
      core::student_config_for(core::student_arch::fnn_a);
  const kd::student_model student =
      kd::distill_student(data.train, soft_labels, student_config);

  // 4. Hardware twin: bit-accurate Q16.16 datapath.
  const hw::fixed_discriminator<fx::q16_16> hw_student(student);

  std::printf("\nresults on %zu held-out traces:\n", data.test.size());
  std::printf("  teacher  (%8zu params): accuracy %.4f\n",
              teacher.parameter_count(), teacher.accuracy(data.test));
  std::printf("  student  (%8zu params): accuracy %.4f\n",
              student.parameter_count(), student.accuracy(data.test));
  std::printf("  hardware (Q16.16 datapath): accuracy %.4f, "
              "float agreement %.2f %%\n",
              hw_student.accuracy(data.test),
              100.0 * hw_student.agreement_with_float(student, data.test));
  std::printf("  compression: %.2f %% fewer parameters than the teacher\n",
              100.0 * kd::compression_rate(teacher.parameter_count(),
                                           student.parameter_count()));

  // Classify one fresh trace the way the FPGA would.
  const bool state = hw_student.predict_state(
      data.test.trace(0), data.test.samples_per_quadrature());
  std::printf("\nfirst test trace: prepared |%d>, hardware reads |%d>\n",
              data.test.label_state(0) ? 1 : 0, state ? 1 : 0);
  return 0;
}
