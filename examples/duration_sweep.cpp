// Readout-duration trade-off on one qubit (a miniature of paper Fig. 4a).
//
// Shorter readout = less decoherence elsewhere in the circuit but fewer
// samples to integrate. This example distills a student per duration and
// prints the fidelity curve, including the T1-decay effect that makes very
// long readouts counterproductive for short-lived qubits.
#include <cstdio>

#include "klinq/core/presets.hpp"
#include "klinq/hw/fixed_discriminator.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/kd/teacher.hpp"
#include "klinq/qsim/dataset_builder.hpp"

int main() {
  using namespace klinq;

  // A T1-limited qubit (like the paper's Q5): long readouts start to lose
  // shots to mid-measurement decay.
  qsim::dataset_spec spec;
  spec.device = qsim::single_qubit_test_preset();
  spec.device.qubits[0].t1_ns = 8000.0;   // 8 µs
  spec.device.qubits[0].ground = {1.85, 1.2};
  spec.device.qubits[0].excited = {2.15, 1.2};  // tighter separation
  spec.shots_per_permutation_train = 600;
  spec.shots_per_permutation_test = 600;
  spec.seed = 7;
  std::printf("generating dataset...\n");
  const qsim::qubit_dataset data = qsim::build_qubit_dataset(spec, 0);

  kd::teacher_config teacher_config;
  teacher_config.hidden = {128, 64};
  teacher_config.epochs = 6;
  std::printf("training teacher at the full 1 us duration...\n");
  const kd::teacher_model teacher =
      kd::train_teacher(data.train, teacher_config);
  const std::vector<float> soft_labels = teacher.logits_for(data.train);

  std::printf("\n%-12s %10s %12s\n", "duration", "fidelity", "params");
  for (const double duration_ns : {300.0, 400.0, 500.0, 700.0, 1000.0}) {
    const bool full = duration_ns >= data.train.duration_ns() - 1e-9;
    const data::trace_dataset train =
        full ? data.train : data.train.sliced_to_duration_ns(duration_ns);
    const data::trace_dataset test =
        full ? data.test : data.test.sliced_to_duration_ns(duration_ns);

    // Fixed student input width (31): the averager regroups dynamically.
    kd::student_config config =
        core::student_config_for(core::student_arch::fnn_a);
    const kd::student_model student =
        kd::distill_student(train, soft_labels, config);
    const hw::fixed_discriminator<fx::q16_16> hw_student(student);
    std::printf("%8.0f ns %10.4f %12zu\n", duration_ns,
                hw_student.accuracy(test), student.parameter_count());
  }

  std::printf(
      "\nNote the plateau/rollover: past the noise-limited regime, extra "
      "integration time mostly adds T1-decay errors (cf. paper Table II, "
      "qubit 5 peaking below 1 us).\n");
  return 0;
}
