// FPGA datapath walkthrough: follow one readout trace through every stage of
// the KLiNQ pipeline in hardware numerics, then print the cycle-accurate
// latency breakdown and the resource report (paper Fig. 3 + Table III).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "klinq/hw/fixed_discriminator.hpp"
#include "klinq/hw/report.hpp"
#include "klinq/hw/verilog_emitter.hpp"
#include "klinq/kd/distiller.hpp"
#include "klinq/qsim/dataset_builder.hpp"

int main() {
  using namespace klinq;
  using fx::q16_16;

  // Train a small FNN-A student to have realistic weights in the datapath.
  qsim::dataset_spec spec;
  spec.device = qsim::single_qubit_test_preset();
  spec.shots_per_permutation_train = 300;
  spec.shots_per_permutation_test = 10;
  spec.seed = 3;
  const qsim::qubit_dataset data = qsim::build_qubit_dataset(spec, 0);
  kd::student_config config;
  config.groups_per_quadrature = 15;
  config.epochs = 30;
  const kd::student_model student = kd::distill_student(data.train, {}, config);
  const hw::fixed_discriminator<q16_16> hw_student(student);

  std::printf("== stage-by-stage walk of one trace (Q16.16 registers) ==\n\n");
  const auto trace = data.test.trace(0);
  const std::size_t n = data.test.samples_per_quadrature();

  // ADC capture: float volts -> Q16.16 registers.
  const std::vector<q16_16> quantized =
      hw::fixed_frontend<q16_16>::quantize_trace(trace);
  std::printf("ADC input: %zu I + %zu Q samples; first I-samples: "
              "%.4f %.4f %.4f ...\n",
              n, n, quantized[0].to_double(), quantized[1].to_double(),
              quantized[2].to_double());

  // AVG -> NORM -> MF -> CONCAT.
  std::vector<q16_16> features(hw_student.frontend().output_width());
  hw_student.frontend().extract(quantized, n, features);
  std::printf("\nAVG&NORM + MF output (%zu features):\n  avg I: ",
              features.size());
  for (std::size_t g = 0; g < 5; ++g) {
    std::printf("%.4f ", features[g].to_double());
  }
  std::printf("...\n  avg Q: ");
  for (std::size_t g = 15; g < 20; ++g) {
    std::printf("%.4f ", features[g].to_double());
  }
  std::printf("...\n  MF feature: %.4f\n", features.back().to_double());

  // FC layers.
  const q16_16 logit = hw_student.net().forward_logit(features);
  std::printf("\nnetwork output register: %.5f (raw 0x%08llx) -> sign bit %d "
              "-> state |%d>\n",
              logit.to_double(),
              static_cast<unsigned long long>(
                  static_cast<std::uint32_t>(logit.raw())),
              logit.sign_bit() ? 1 : 0, logit.sign_bit() ? 0 : 1);
  std::printf("prepared state was |%d>\n", data.test.label_state(0) ? 1 : 0);

  // Timing and resources.
  std::printf("\n== cycle-accurate latency (paper-calibrated mode) ==\n");
  for (const auto* name : {"FNN-A", "FNN-B"}) {
    const auto config_hw = std::string(name) == "FNN-A"
                               ? hw::fnn_a_datapath()
                               : hw::fnn_b_datapath();
    const auto lat =
        hw::compute_latency(config_hw, hw::latency_mode::paper_calibrated);
    std::printf("%s: ", name);
    for (const auto& stage : lat.stages) {
      std::printf("%s=%zu ", stage.name.c_str(), stage.cycles);
    }
    std::printf(" total=%zu cycles (paper: 32 ns)\n",
                lat.total_serial_cycles);
  }

  std::printf("\n== resource utilization (ZCU216) ==\n");
  hw::print_utilization_report(hw::build_utilization_report(), std::cout);

  // Export the trained student as synthesizable RTL + testbench.
  const hw::verilog_options rtl_options{.module_name = "klinq_student_q1"};
  {
    std::ofstream out("klinq_student_q1.sv");
    out << hw::emit_student_verilog(hw_student.net(), rtl_options);
  }
  {
    std::ofstream out("klinq_student_q1_tb.sv");
    out << hw::emit_student_testbench(hw_student.net(), rtl_options);
  }
  std::printf("\nwrote klinq_student_q1.sv and klinq_student_q1_tb.sv "
              "(SystemVerilog export of the trained student)\n");
  return 0;
}
