// Mid-circuit measurement demo — the capability KLiNQ's independent
// per-qubit discriminators enable (paper §I, contribution 2).
//
// Scenario: a 3-qubit device runs a circuit in which only the ANCILLA
// (qubit 2) is measured mid-circuit; data qubits 1 and 3 keep evolving.
// Because every KLiNQ discriminator is a self-contained compact network on
// its own channel, the ancilla readout needs no synchronized readout of the
// other qubits — we measure one channel, branch on the outcome, and apply
// the (simulated) conditional correction, just like real-time feedback in
// quantum error correction.
#include <cstdio>

#include "klinq/core/system.hpp"
#include "klinq/qsim/dataset_builder.hpp"

int main() {
  using namespace klinq;

  // 3-qubit device: take the first three qubits of the paper preset.
  qsim::device_params device = qsim::lienhard5q_preset();
  device.qubits.resize(3);
  la::matrix_d crosstalk(3, 3, 0.0);
  crosstalk(1, 0) = 0.15;
  crosstalk(1, 2) = 0.12;
  device.crosstalk = std::move(crosstalk);

  core::system_config config;
  config.dataset.device = device;
  config.dataset.shots_per_permutation_train = 150;
  config.dataset.shots_per_permutation_test = 50;
  config.dataset.seed = 11;
  config.teacher.hidden = {128, 64};  // demo-sized teacher
  config.teacher.epochs = 6;
  config.cache_dir = "";  // train fresh for the demo

  std::printf("training one independent discriminator per qubit...\n\n");
  const core::klinq_system system = core::klinq_system::train(config);

  // --- mid-circuit loop ----------------------------------------------------
  // Simulate shots; measure ONLY the ancilla's channel mid-circuit and
  // branch on the outcome (a conditional X correction in a real stack).
  // Qubit 1 (index 0) serves as the ancilla — error-correction ancillas are
  // chosen for readout quality, and its neighbour (qubit 2) is the
  // crosstalk victim here, not the other way around.
  const qsim::readout_simulator sim(device);
  const std::size_t ancilla = 0;
  xoshiro256 rng(99);

  std::printf("mid-circuit ancilla measurements (channel %zu only):\n",
              ancilla + 1);
  std::size_t corrections = 0;
  std::size_t correct_reads = 0;
  const std::size_t shots = 200;
  // One scratch arena reused across every shot: the measurement loop
  // performs no per-shot heap allocation once the buffers are warm.
  core::qubit_discriminator::measurement_scratch scratch;
  for (std::size_t shot = 0; shot < shots; ++shot) {
    // Alternate the ancilla preparation; data qubits in superposition-ish
    // random states (their channels are never read here).
    const bool ancilla_prepared = (shot % 2) == 1;
    std::uint32_t perm = static_cast<std::uint32_t>(rng.uniform_index(8));
    perm = ancilla_prepared ? (perm | (1u << ancilla))
                            : (perm & ~(1u << ancilla));
    const qsim::shot_result result = sim.simulate_shot(perm, rng);

    const bool outcome =
        system.measure(ancilla, result.channels[ancilla],
                       sim.samples_per_quadrature(), scratch);
    if (outcome) ++corrections;  // feedback: would trigger conditional X
    if (outcome == ancilla_prepared) ++correct_reads;

    if (shot < 4) {
      std::printf("  shot %zu: prepared |%d> -> read |%d> -> %s\n", shot,
                  ancilla_prepared ? 1 : 0, outcome ? 1 : 0,
                  outcome ? "apply X correction" : "no correction");
    }
  }
  std::printf("  ...\n");
  std::printf("\n%zu/%zu ancilla reads correct (%.1f %%), "
              "%zu feedback corrections issued\n",
              correct_reads, shots, 100.0 * correct_reads / shots,
              corrections);

  // The decision arrives 32 pipeline cycles after the trace — the latency
  // budget that makes this feedback real-time (paper Table III).
  std::printf("\nhardware decision latency: 32 cycles (paper: 32 ns) after "
              "the last sample — fast feedback for error correction.\n");
  return 0;
}
